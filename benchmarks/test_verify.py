"""Host-time benchmark: the verifier suite's overhead across the paper apps.

Runs the full pipeline (static compile, process start, specialization,
one dynamic call) for every Figure-4 benchmark under ``verify="off"`` and
``verify="paranoid"`` and records:

* per-app host seconds for both modes and the relative overhead;
* verifier counters (checks run, diagnostics by layer, time in checkers).

Acceptance: paranoid mode reports **zero diagnostics** over all eleven
apps (the verifiers never cry wolf on correct code), produces identical
results, and costs < 15% extra host wall time overall.  Results go to
``BENCH_verify.json``.
"""

from __future__ import annotations

import gc
import json
import time
from pathlib import Path

from repro import report
from repro.apps import ALL_APPS, FIGURE4_APPS
from repro.core.driver import TccCompiler

BENCH_PATH = Path(__file__).parent.parent / "BENCH_verify.json"

_RESULTS: dict = {"apps": {}}

#: Wall-time overhead budget for paranoid mode, summed over all apps.
MAX_OVERHEAD = 0.15


def _run_app(app, mode: str):
    """Full pipeline under one verify mode; returns (seconds, result).

    GC is disabled inside the timed region (as pytest-benchmark does):
    a collection triggered mid-run would bill one mode for garbage the
    other produced."""
    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        prog = TccCompiler(verify=mode).compile(app.source,
                                                filename=f"<{app.name}>")
        proc = prog.start(backend="icode", codecache=False, verify=mode)
        ctx = app.setup(proc)
        entry = proc.run(app.builder, *app.builder_args(ctx))
        fn = proc.function(entry, app.dyn_signature, app.dyn_returns)
        result = app.dyn_call(fn, ctx)
        return time.perf_counter() - t0, result
    finally:
        gc.enable()


def _best_runs(app, rounds: int = 5):
    """Best-of-N for both modes, rounds interleaved so that transient host
    load inflates both sides equally rather than skewing the ratio."""
    best = {"off": float("inf"), "paranoid": float("inf")}
    result = {}
    for _ in range(rounds):
        for mode in ("off", "paranoid"):
            seconds, result[mode] = _run_app(app, mode)
            best[mode] = min(best[mode], seconds)
    return best["off"], result["off"], best["paranoid"], result["paranoid"]


def test_paranoid_overhead_and_zero_diagnostics():
    totals = {"off": 0.0, "paranoid": 0.0}
    for name in FIGURE4_APPS:
        app = ALL_APPS[name]
        report.reset()
        off_s, off_result, par_s, par_result = _best_runs(app)
        stats = report.verify_stats()

        assert par_result == off_result, name
        assert stats["checks_run"] > 0, name
        # No layer may report anything on correct code (a diagnostic would
        # have raised VerifyError already; the counters double-check).
        assert all(n == 0 for n in stats["diagnostics"].values()), (
            name, stats)

        totals["off"] += off_s
        totals["paranoid"] += par_s
        _RESULTS["apps"][name] = {
            "off_s": round(off_s, 6),
            "paranoid_s": round(par_s, 6),
            "overhead": round(par_s / off_s - 1.0, 4),
            "checks_run": stats["checks_run"],
            "verify_time_s": round(stats["time_seconds"], 6),
        }

    overhead = totals["paranoid"] / totals["off"] - 1.0
    _RESULTS["total"] = {
        "off_s": round(totals["off"], 6),
        "paranoid_s": round(totals["paranoid"], 6),
        "overhead": round(overhead, 4),
    }
    assert overhead < MAX_OVERHEAD, _RESULTS["total"]


def test_write_bench_json():
    """Persist the comparison (runs after the case above)."""
    assert _RESULTS["apps"], "verify benchmark did not run"
    payload = dict(_RESULTS)
    payload["description"] = (
        "Verifier-suite benchmark: host seconds for the full pipeline "
        "(static compile, start, specialization, one dynamic call) per "
        "Figure-4 app under verify=off vs verify=paranoid, with verifier "
        "counters.  Acceptance: zero diagnostics on correct code and "
        f"< {MAX_OVERHEAD:.0%} total wall-time overhead."
    )
    BENCH_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True))
    assert BENCH_PATH.exists()
