"""Benchmark-trend collector: fold every ``BENCH_*.json`` artifact into
one ``BENCH_summary.json`` and gate on the tiering regression rule.

Run from the repository root (CI's ``bench-trend`` step does)::

    python benchmarks/trend.py

The summary records, per benchmark file, its description and every
numeric headline it carries, so one artifact tracks the whole perf
surface across commits.  The gate: ``BENCH_tiering.json`` must not show
the tiered engine *slower* than the block engine on any Figure-4 app —
speedups below :data:`FLOOR` (a small allowance for shared-runner
timing noise; the real bar of >= 1.3x on >= 3 apps is asserted by the
benchmark itself) fail the build with exit code 1.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SUMMARY_PATH = ROOT / "BENCH_summary.json"

#: Minimum tiered-vs-block speedup tolerated per Figure-4 app before the
#: trend gate calls it a regression (0.95 absorbs host timing jitter).
FLOOR = 0.95


def collect() -> dict:
    """Read every BENCH_*.json in the repo root into one mapping."""
    summary: dict = {}
    for path in sorted(ROOT.glob("BENCH_*.json")):
        if path.name == SUMMARY_PATH.name:
            continue
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            summary[path.stem] = {"error": f"unreadable: {exc}"}
            continue
        summary[path.stem] = payload
    return summary


def tiering_regressions(summary: dict) -> list:
    """Figure-4 apps where the tiered engine fell below the floor."""
    tiering = summary.get("BENCH_tiering")
    if not isinstance(tiering, dict):
        return []
    slow = []
    for app, row in sorted(tiering.get("figure4", {}).items()):
        speedup = row.get("speedup")
        if isinstance(speedup, (int, float)) and speedup < FLOOR:
            slow.append((app, speedup))
    return slow


def main() -> int:
    summary = collect()
    if not summary:
        print("trend: no BENCH_*.json artifacts found; run benchmarks/ first")
        return 1
    slow = tiering_regressions(summary)
    summary["_trend"] = {
        "benchmarks_collected": sorted(summary),
        "tiering_floor": FLOOR,
        "tiering_regressions": [
            {"app": app, "speedup": speedup} for app, speedup in slow
        ],
    }
    SUMMARY_PATH.write_text(json.dumps(summary, indent=2, sort_keys=True))
    print(f"trend: collected {len(summary) - 1} benchmark files "
          f"into {SUMMARY_PATH.name}")
    if slow:
        for app, speedup in slow:
            print(f"trend: REGRESSION {app}: tiered is {speedup}x vs block "
                  f"(floor {FLOOR})")
        return 1
    if "BENCH_tiering" in summary:
        fig4 = summary["BENCH_tiering"].get("figure4", {})
        print(f"trend: tiered >= {FLOOR}x block on all "
              f"{len(fig4)} Figure-4 apps")
    return 0


if __name__ == "__main__":
    sys.exit(main())
