"""Benchmark-trend collector: fold every ``BENCH_*.json`` artifact into
one ``BENCH_summary.json`` and gate on the tiering regression rule.

Run from the repository root (CI's ``bench-trend`` step does)::

    python benchmarks/trend.py

The summary records, per benchmark file, its description and every
numeric headline it carries, so one artifact tracks the whole perf
surface across commits.  Two gates fail the build with exit code 1:

* ``BENCH_tiering.json`` must not show the tiered engine *slower* than
  the block engine on any Figure-4 app — speedups below :data:`FLOOR`
  (a small allowance for shared-runner timing noise; the real bar of
  >= 1.3x on >= 3 apps is asserted by the benchmark itself);
* ``BENCH_warmstart.json`` must show the persistent-cache warm phase
  with zero cold compiles and a cold/warm modeled-cycle speedup of at
  least :data:`WARMSTART_FLOOR`;
* ``BENCH_analysis.json`` must show guard elision changing *no* modeled
  result (bit-identical outputs on every app) while reducing modeled
  cycles by at least :data:`ANALYSIS_FLOOR` percent on at least
  :data:`ANALYSIS_MIN_APPS` Figure-4 apps;
* ``BENCH_serving.json`` must show the serving SLO verdict OK with no
  error budget exhausted, and the observability plane's measured
  overhead at or under :data:`SLO_OVERHEAD_CEILING_PCT` percent.

An absent artifact skips its gate (benchmarks are opt-in).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SUMMARY_PATH = ROOT / "BENCH_summary.json"

#: Minimum tiered-vs-block speedup tolerated per Figure-4 app before the
#: trend gate calls it a regression (0.95 absorbs host timing jitter).
FLOOR = 0.95

#: Minimum cold/warm modeled-codegen-cycle speedup BENCH_warmstart.json
#: must show before the gate calls the persistent cache a regression.
WARMSTART_FLOOR = 5.0

#: Guard-elision gate: modeled-cycle reduction (%) elision must deliver,
#: and on how many Figure-4 apps, before the gate calls it a regression.
ANALYSIS_FLOOR = 5.0
ANALYSIS_MIN_APPS = 3

#: Serving-SLO gate: the observability plane's measured overhead (%)
#: must not exceed this ceiling (mirrors the benchmark's own assert).
SLO_OVERHEAD_CEILING_PCT = 5.0


def collect() -> dict:
    """Read every BENCH_*.json in the repo root into one mapping."""
    summary: dict = {}
    for path in sorted(ROOT.glob("BENCH_*.json")):
        if path.name == SUMMARY_PATH.name:
            continue
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            summary[path.stem] = {"error": f"unreadable: {exc}"}
            continue
        summary[path.stem] = payload
    return summary


def tiering_regressions(summary: dict) -> list:
    """Figure-4 apps where the tiered engine fell below the floor."""
    tiering = summary.get("BENCH_tiering")
    if not isinstance(tiering, dict):
        return []
    slow = []
    for app, row in sorted(tiering.get("figure4", {}).items()):
        speedup = row.get("speedup")
        if isinstance(speedup, (int, float)) and speedup < FLOOR:
            slow.append((app, speedup))
    return slow


def warmstart_regressions(summary: dict) -> list:
    """Ways the persistent-cache warm start fell below its headline:
    any cold compile in the warm phase, or a cold/warm modeled-cycle
    speedup under :data:`WARMSTART_FLOOR`."""
    warmstart = summary.get("BENCH_warmstart")
    if not isinstance(warmstart, dict):
        return []
    problems = []
    cold_compiles = warmstart.get("warm_cold_compiles")
    if isinstance(cold_compiles, int) and cold_compiles > 0:
        problems.append(f"{cold_compiles} cold compiles in the warm phase")
    speedup = warmstart.get("cycle_speedup")
    if isinstance(speedup, (int, float)) and speedup < WARMSTART_FLOOR:
        problems.append(f"cycle speedup {speedup}x below the "
                        f"{WARMSTART_FLOOR}x floor")
    return problems


def analysis_regressions(summary: dict) -> list:
    """Ways guard elision broke its contract: any app whose result
    changed with analysis on (never acceptable), or fewer than
    :data:`ANALYSIS_MIN_APPS` apps clearing :data:`ANALYSIS_FLOOR`
    percent modeled-cycle reduction."""
    analysis = summary.get("BENCH_analysis")
    if not isinstance(analysis, dict):
        return []
    problems = []
    apps = analysis.get("apps", {})
    for app, row in sorted(apps.items()):
        if row.get("identical") is False:
            problems.append(f"{app}: elision changed the modeled result")
    over = [app for app, row in apps.items()
            if isinstance(row.get("reduction_pct"), (int, float))
            and row["reduction_pct"] >= ANALYSIS_FLOOR]
    if apps and len(over) < ANALYSIS_MIN_APPS:
        problems.append(
            f"only {len(over)} apps at >= {ANALYSIS_FLOOR}% cycle "
            f"reduction (need {ANALYSIS_MIN_APPS})")
    return problems


def serving_slo_regressions(summary: dict) -> list:
    """Ways the serving run broke its SLOs: a breached verdict, an
    exhausted error budget, or observability overhead over the
    ceiling."""
    serving = summary.get("BENCH_serving")
    if not isinstance(serving, dict):
        return []
    problems = []
    slo = serving.get("slo", {})
    if slo.get("ok") is not True:
        worst = slo.get("worst_alert", "unknown")
        problems.append(f"SLO verdict breached (worst alert: {worst})")
    exhausted = slo.get("exhausted") or []
    if exhausted:
        problems.append("error budget exhausted: " + ", ".join(exhausted))
    overhead = serving.get("overhead", {}).get("overhead_pct")
    if isinstance(overhead, (int, float)) and \
            overhead > SLO_OVERHEAD_CEILING_PCT:
        problems.append(
            f"observability overhead {overhead}% over the "
            f"{SLO_OVERHEAD_CEILING_PCT}% ceiling")
    return problems


def main() -> int:
    summary = collect()
    if not summary:
        print("trend: no BENCH_*.json artifacts found; run benchmarks/ first")
        return 1
    slow = tiering_regressions(summary)
    cold_starts = warmstart_regressions(summary)
    elision = analysis_regressions(summary)
    slo_breaches = serving_slo_regressions(summary)
    summary["_trend"] = {
        "benchmarks_collected": sorted(summary),
        "tiering_floor": FLOOR,
        "tiering_regressions": [
            {"app": app, "speedup": speedup} for app, speedup in slow
        ],
        "warmstart_floor": WARMSTART_FLOOR,
        "warmstart_regressions": cold_starts,
        "analysis_floor_pct": ANALYSIS_FLOOR,
        "analysis_regressions": elision,
        "slo_overhead_ceiling_pct": SLO_OVERHEAD_CEILING_PCT,
        "serving_slo_regressions": slo_breaches,
    }
    SUMMARY_PATH.write_text(json.dumps(summary, indent=2, sort_keys=True))
    print(f"trend: collected {len(summary) - 1} benchmark files "
          f"into {SUMMARY_PATH.name}")
    failed = False
    if slow:
        for app, speedup in slow:
            print(f"trend: REGRESSION {app}: tiered is {speedup}x vs block "
                  f"(floor {FLOOR})")
        failed = True
    elif "BENCH_tiering" in summary:
        fig4 = summary["BENCH_tiering"].get("figure4", {})
        print(f"trend: tiered >= {FLOOR}x block on all "
              f"{len(fig4)} Figure-4 apps")
    if cold_starts:
        for problem in cold_starts:
            print(f"trend: REGRESSION warm start: {problem}")
        failed = True
    elif "BENCH_warmstart" in summary:
        speedup = summary["BENCH_warmstart"].get("cycle_speedup")
        print(f"trend: warm start clean — 0 cold compiles, "
              f"{speedup}x cycle speedup")
    if elision:
        for problem in elision:
            print(f"trend: REGRESSION guard elision: {problem}")
        failed = True
    elif "BENCH_analysis" in summary:
        over = summary["BENCH_analysis"].get("apps_over_floor", [])
        print(f"trend: guard elision clean — results identical on all "
              f"apps, >= {ANALYSIS_FLOOR}% cycle reduction on "
              f"{len(over)}")
    if slo_breaches:
        for problem in slo_breaches:
            print(f"trend: REGRESSION serving SLO: {problem}")
        failed = True
    elif "BENCH_serving" in summary:
        overhead = summary["BENCH_serving"].get(
            "overhead", {}).get("overhead_pct")
        print(f"trend: serving SLOs met — verdict OK, observability "
              f"overhead {overhead}% (ceiling {SLO_OVERHEAD_CEILING_PCT}%)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
