"""Benchmark-trend collector: fold every ``BENCH_*.json`` artifact into
one ``BENCH_summary.json`` and gate on the tiering regression rule.

Run from the repository root (CI's ``bench-trend`` step does)::

    python benchmarks/trend.py

The summary records, per benchmark file, its description and every
numeric headline it carries, so one artifact tracks the whole perf
surface across commits.  Two gates fail the build with exit code 1:

* ``BENCH_tiering.json`` must not show the tiered engine *slower* than
  the block engine on any Figure-4 app — speedups below :data:`FLOOR`
  (a small allowance for shared-runner timing noise; the real bar of
  >= 1.3x on >= 3 apps is asserted by the benchmark itself);
* ``BENCH_warmstart.json`` must show the persistent-cache warm phase
  with zero cold compiles and a cold/warm modeled-cycle speedup of at
  least :data:`WARMSTART_FLOOR`.

Either artifact being absent skips its gate (benchmarks are opt-in).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SUMMARY_PATH = ROOT / "BENCH_summary.json"

#: Minimum tiered-vs-block speedup tolerated per Figure-4 app before the
#: trend gate calls it a regression (0.95 absorbs host timing jitter).
FLOOR = 0.95

#: Minimum cold/warm modeled-codegen-cycle speedup BENCH_warmstart.json
#: must show before the gate calls the persistent cache a regression.
WARMSTART_FLOOR = 5.0


def collect() -> dict:
    """Read every BENCH_*.json in the repo root into one mapping."""
    summary: dict = {}
    for path in sorted(ROOT.glob("BENCH_*.json")):
        if path.name == SUMMARY_PATH.name:
            continue
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            summary[path.stem] = {"error": f"unreadable: {exc}"}
            continue
        summary[path.stem] = payload
    return summary


def tiering_regressions(summary: dict) -> list:
    """Figure-4 apps where the tiered engine fell below the floor."""
    tiering = summary.get("BENCH_tiering")
    if not isinstance(tiering, dict):
        return []
    slow = []
    for app, row in sorted(tiering.get("figure4", {}).items()):
        speedup = row.get("speedup")
        if isinstance(speedup, (int, float)) and speedup < FLOOR:
            slow.append((app, speedup))
    return slow


def warmstart_regressions(summary: dict) -> list:
    """Ways the persistent-cache warm start fell below its headline:
    any cold compile in the warm phase, or a cold/warm modeled-cycle
    speedup under :data:`WARMSTART_FLOOR`."""
    warmstart = summary.get("BENCH_warmstart")
    if not isinstance(warmstart, dict):
        return []
    problems = []
    cold_compiles = warmstart.get("warm_cold_compiles")
    if isinstance(cold_compiles, int) and cold_compiles > 0:
        problems.append(f"{cold_compiles} cold compiles in the warm phase")
    speedup = warmstart.get("cycle_speedup")
    if isinstance(speedup, (int, float)) and speedup < WARMSTART_FLOOR:
        problems.append(f"cycle speedup {speedup}x below the "
                        f"{WARMSTART_FLOOR}x floor")
    return problems


def main() -> int:
    summary = collect()
    if not summary:
        print("trend: no BENCH_*.json artifacts found; run benchmarks/ first")
        return 1
    slow = tiering_regressions(summary)
    cold_starts = warmstart_regressions(summary)
    summary["_trend"] = {
        "benchmarks_collected": sorted(summary),
        "tiering_floor": FLOOR,
        "tiering_regressions": [
            {"app": app, "speedup": speedup} for app, speedup in slow
        ],
        "warmstart_floor": WARMSTART_FLOOR,
        "warmstart_regressions": cold_starts,
    }
    SUMMARY_PATH.write_text(json.dumps(summary, indent=2, sort_keys=True))
    print(f"trend: collected {len(summary) - 1} benchmark files "
          f"into {SUMMARY_PATH.name}")
    failed = False
    if slow:
        for app, speedup in slow:
            print(f"trend: REGRESSION {app}: tiered is {speedup}x vs block "
                  f"(floor {FLOOR})")
        failed = True
    elif "BENCH_tiering" in summary:
        fig4 = summary["BENCH_tiering"].get("figure4", {})
        print(f"trend: tiered >= {FLOOR}x block on all "
              f"{len(fig4)} Figure-4 apps")
    if cold_starts:
        for problem in cold_starts:
            print(f"trend: REGRESSION warm start: {problem}")
        failed = True
    elif "BENCH_warmstart" in summary:
        speedup = summary["BENCH_warmstart"].get("cycle_speedup")
        print(f"trend: warm start clean — 0 cold compiles, "
              f"{speedup}x cycle speedup")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
