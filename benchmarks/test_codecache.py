"""Dynamic-code reuse: cold vs warm (Tier-1 memo) vs patched (Tier-2
copy-and-patch) instantiation cost over the Table 1 kernels.

For each kernel and back end, one process compiles the same closure three
ways:

* **cold** — first instantiation: the full closure-walk + back-end
  pipeline, with the patch recorder riding along;
* **warm** — the same ``$`` bindings again: a Tier-1 memo hit (one cache
  probe, zero back-end work) — the free-variable kernels re-bind fresh
  addresses each call, so they go through Tier-2 instead;
* **patched** — a different ``$`` seed: a Tier-2 template clone + hole
  patch, skipping lowering and register allocation entirely.

Results (modeled codegen cycles per instruction plus host wall time) are
written to ``BENCH_codecache.json``; the headline acceptance numbers are a
warm hit costing zero back-end emit cycles and a patched ICODE kernel at
least 5x cheaper than a cold ICODE compile.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro import report
from repro.apps.table1 import TABLE1_ROWS
from repro.core.driver import TccCompiler
from repro.runtime.costmodel import Phase

BENCH_PATH = Path(__file__).parent.parent / "BENCH_codecache.json"

#: Phases a Tier-1 hit must never charge: every back-end stage.
_BACKEND_PHASES = (
    Phase.EMIT, Phase.IR, Phase.FLOWGRAPH, Phase.LIVENESS, Phase.INTERVALS,
    Phase.REGALLOC, Phase.TRANSLATE, Phase.LINK, Phase.PATCH,
)

_RESULTS: dict = {"kernels": {}}


def _run(proc, seed):
    before = report.cache_stats()
    t0 = time.perf_counter()
    entry = proc.run("build", seed)
    wall = time.perf_counter() - t0
    after = report.cache_stats()
    if after["hits"] > before["hits"]:
        kind = "hit"
    elif after["patched"] > before["patched"]:
        kind = "patched"
    else:
        kind = "cold"
    stats = proc.last_codegen_stats
    return {
        "entry": entry,
        "kind": kind,
        "stats": stats,
        "cycles": stats.total_cycles(),
        "cpi": stats.cycles_per_instruction(),
        "wall_s": wall,
    }


def _measure_kernel(source, backend):
    program = TccCompiler().compile(source, filename="<codecache-bench>")
    proc = program.start(backend=backend)  # the cache defaults to on
    cold = _run(proc, 5)
    warm = _run(proc, 5)
    patched = _run(proc, 7)
    return proc, cold, warm, patched


@pytest.mark.parametrize(
    "row_name,factory", list(TABLE1_ROWS.items()),
    ids=[r.replace(" ", "-").replace(",", "") for r in TABLE1_ROWS],
)
@pytest.mark.parametrize("backend", ["vcode", "icode"])
def test_codecache_reuse(row_name, factory, backend):
    report.reset()
    source = factory()
    proc, cold, warm, patched = _measure_kernel(source, backend)

    assert cold["kind"] == "cold"
    assert warm["kind"] in ("hit", "patched")
    assert patched["kind"] in ("hit", "patched", "cold")

    # Warm Tier-1 hits cost zero back-end cycles: only the cache probe.
    if warm["kind"] == "hit":
        for phase in _BACKEND_PHASES:
            assert warm["stats"].cycles.get(phase, 0) == 0, phase
        assert warm["stats"].generated_instructions == 0
        assert warm["stats"].events[(Phase.CLOSURE, "cache_probe")] == 1

    # Any reuse is far cheaper than the cold compile it replaces.
    if warm["kind"] != "cold":
        assert warm["cycles"] * 5 <= cold["cycles"]
    if patched["kind"] == "patched":
        assert patched["cpi"] * 5 <= cold["cpi"]

    # Patched code executes identically to a cold compile of the same seed.
    if patched["kind"] == "patched":
        cold_proc = TccCompiler().compile(source).start(
            backend=backend, codecache=False)
        cold_entry = cold_proc.run("build", 7)
        f_patched = proc.function(patched["entry"], "i", "i")
        f_cold = cold_proc.function(cold_entry, "i", "i")
        for arg in (0, 1, 9):
            assert f_patched(arg) == f_cold(arg)

    entry = _RESULTS["kernels"].setdefault(row_name, {})
    entry[backend] = {
        stage: {
            "kind": r["kind"],
            "modeled_cycles": r["cycles"],
            "cycles_per_instruction": round(r["cpi"], 2),
            "wall_s": round(r["wall_s"], 6),
        }
        for stage, r in (("cold", cold), ("warm", warm),
                         ("patched", patched))
    }
    entry[backend]["counters"] = report.cache_stats()


def test_patched_icode_at_least_5x_cheaper(benchmark):
    """Acceptance headline: Tier-2 patching a Table 1 kernel costs >=5x
    fewer cost-model codegen cycles per instruction than cold ICODE."""
    report.reset()
    source = TABLE1_ROWS["one large cspec, dynamic locals"]()

    def measure():
        return _measure_kernel(source, "icode")

    _proc, cold, warm, patched = benchmark.pedantic(
        measure, rounds=1, iterations=1)
    assert warm["kind"] == "hit"
    assert patched["kind"] == "patched"
    speedup = cold["cpi"] / patched["cpi"]
    assert speedup >= 5.0, speedup
    assert report.cache_stats()["cycles_saved"] > 0
    benchmark.extra_info["cold_cpi"] = round(cold["cpi"], 1)
    benchmark.extra_info["patched_cpi"] = round(patched["cpi"], 1)
    benchmark.extra_info["speedup"] = round(speedup, 1)
    _RESULTS["patched_speedup_vs_cold_icode"] = round(speedup, 2)


def test_warm_hit_wall_time(benchmark):
    """Host wall time of a warm Tier-1 re-instantiation."""
    source = TABLE1_ROWS["one large cspec, dynamic locals"]()
    program = TccCompiler().compile(source)
    proc = program.start(backend="icode")
    proc.run("build", 5)  # prime the cache

    entry = benchmark(lambda: proc.run("build", 5))
    assert isinstance(entry, int)


def test_write_bench_json():
    """Persist the reuse matrix (runs after the kernels above)."""
    assert _RESULTS["kernels"], "reuse benchmarks did not run"
    payload = dict(_RESULTS)
    payload["description"] = (
        "Specialization-cache benchmark: modeled codegen cycles and host "
        "wall time, cold vs warm (Tier-1) vs patched (Tier-2), per Table 1 "
        "kernel and back end."
    )
    BENCH_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True))
    assert BENCH_PATH.exists()
