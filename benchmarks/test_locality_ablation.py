"""Code-size/locality ablation (paper 4.4: unrolled code wins "unless it
is made too large, and hence acquires poor memory locality").

The simulated machine is ideal by default; enabling the optional
direct-mapped I-cache model charges per-line miss penalties.  A
fully-unrolled vector scale (one straight-line instruction stream per
element) then loses much of its advantage over the looped version — and
with a large enough vector, all of it.
"""

from __future__ import annotations

from repro.core.driver import TccCompiler
from repro.target.cpu import ICache, Machine

FULL_UNROLL = r"""
int build(int *m, int nn, int c) {
    void cspec body = `{
        int i;
        for (i = 0; i < $nn; i++)
            ((int *)$m)[i] = ((int *)$m)[i] * $c;
        return 0;
    };
    return (int)compile(body, int);
}
"""

LOOPED = r"""
int build(int *m, int nn, int c) {
    int * vspec p = param(int *, 0);
    int vspec n = param(int, 1);
    void cspec body = `{
        int i;
        for (i = 0; i < n; i++)
            p[i] = p[i] * $c;
        return 0;
    };
    return (int)compile(body, int);
}
"""

N = 4096
SCALE = 3


def _run(source: str, looped: bool, icache) -> tuple:
    program = TccCompiler().compile(source)
    machine = Machine(icache=icache)
    process = program.start(machine=machine)
    data = machine.memory.alloc_words([1] * N)
    entry = process.run("build", data, N, SCALE)
    signature = "ii" if looped else ""
    fn = process.function(entry, signature, "i")
    args = (data, N) if looped else ()
    fn(*args)  # warm the cache: steady-state behaviour is what matters
    return process.run_cycles(fn, *args)


def test_unrolling_pays_a_locality_tax(benchmark):
    def sweep():
        out = {}
        out["unrolled_ideal"] = _run(FULL_UNROLL, False, None)[1]
        out["unrolled_icache"] = _run(FULL_UNROLL, False, ICache())[1]
        out["looped_ideal"] = _run(LOOPED, True, None)[1]
        out["looped_icache"] = _run(LOOPED, True, ICache())[1]
        return out

    cycles = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # on the ideal machine, full unrolling wins big
    assert cycles["unrolled_ideal"] < 0.6 * cycles["looped_ideal"]
    # the loop fits in the cache: the model changes nothing
    assert cycles["looped_icache"] == cycles["looped_ideal"]
    # the unrolled stream misses on every line, every run: a real tax
    assert cycles["unrolled_icache"] > 1.5 * cycles["unrolled_ideal"]
    benchmark.extra_info["cycles"] = cycles


def test_icache_miss_accounting(benchmark):
    def measure():
        cache = ICache()
        _run(FULL_UNROLL, False, cache)
        return cache

    cache = benchmark.pedantic(measure, rounds=1, iterations=1)
    # ~6 instructions per element / 8 per line, twice (warmup + run)
    assert cache.misses > N / 2
    assert cache.accesses > cache.misses
