"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation switches one tcc mechanism off and measures the consequence
on the benchmark where that mechanism matters most:

* strength reduction of run-time constants  -> ms slows down dramatically
  (integer multiply costs 20 cycles on this machine, as on the paper's);
* dynamic loop unrolling                    -> ms pays loop overhead again;
* the cspec-operand-first evaluation heuristic (5.1) -> deep composition
  chains spill under VCODE (the paper's Figure 2 problem);
* VCODE spilling disabled (the paper's "clients can disable the
  per-instruction if-statements" mode) -> codegen gets cheaper per
  instruction but register exhaustion becomes a hard error.
"""

from __future__ import annotations

import pytest

from repro.apps import ALL_APPS
from repro.apps.harness import measure
from repro.core.driver import TccCompiler
from repro.errors import CodegenError

COMPOSE_CHAIN = """
int build(int n) {
    int i;
    int cspec c = `0;
    int x;
    x = 1;
    for (i = 0; i < n; i++)
        c = `(x + (c + $i));
    return (int)compile(`{ return c; }, int);
}
"""


def test_ablation_strength_reduction(benchmark):
    def run_pair():
        on = measure(ALL_APPS["ms"], backend="icode",
                     strength_reduction=True)
        off = measure(ALL_APPS["ms"], backend="icode",
                      strength_reduction=False)
        return on, off

    on, off = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    assert on.correct and off.correct
    # without shift/add decomposition every scaled element pays the
    # 20-cycle multiply
    assert off.dynamic_cycles > 1.5 * on.dynamic_cycles
    benchmark.extra_info["ms_cycles"] = {
        "strength_reduction_on": on.dynamic_cycles,
        "strength_reduction_off": off.dynamic_cycles,
    }


def test_ablation_dynamic_unrolling(benchmark):
    def run_pair():
        on = measure(ALL_APPS["ms"], backend="icode", dynamic_unrolling=True)
        off = measure(ALL_APPS["ms"], backend="icode",
                      dynamic_unrolling=False)
        return on, off

    on, off = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    assert on.correct and off.correct
    # the unrolled inner loop avoids per-element compare/branch/increment
    assert off.dynamic_cycles > 1.2 * on.dynamic_cycles
    # and the rolled loop generates far fewer instructions
    assert off.generated_instructions < on.generated_instructions
    benchmark.extra_info["ms_cycles"] = {
        "unrolling_on": on.dynamic_cycles,
        "unrolling_off": off.dynamic_cycles,
    }


def test_ablation_cspec_operand_reordering(benchmark):
    """tcc 5.1 / Figure 2: without evaluating cspec operands first, a
    composition chain holds one register per nesting level and VCODE
    spills."""
    tcc = TccCompiler()
    program = tcc.compile(COMPOSE_CHAIN)
    depth = 40

    def run_pair():
        out = {}
        for reorder in (True, False):
            proc = program.start(backend="vcode",
                                 reorder_cspec_operands=reorder)
            entry = proc.run("build", depth)
            fn = proc.function(entry, "", "i")
            value = fn()
            out[reorder] = (value, proc.last_backend.n_spill_slots)
        return out

    results = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    value_on, spills_on = results[True]
    value_off, spills_off = results[False]
    assert value_on == value_off == depth * 1 + sum(range(depth))
    assert spills_on == 0
    assert spills_off > 10  # one live register per level minus the pool
    benchmark.extra_info["spill_slots"] = {
        "heuristic_on": spills_on, "heuristic_off": spills_off,
    }


def test_ablation_vcode_spills_disabled(benchmark):
    tcc = TccCompiler()
    program = tcc.compile(COMPOSE_CHAIN)

    def attempt():
        # shallow chains fit the register file even without the heuristic
        proc = program.start(backend="vcode", allow_spills=False)
        entry = proc.run("build", 5)
        return proc.function(entry, "", "i")()

    value = benchmark.pedantic(attempt, rounds=1, iterations=1)
    assert value == 5 + sum(range(5))
    # deep chains without the reorder heuristic exhaust the pool and the
    # paper-documented hard error fires
    proc = program.start(backend="vcode", allow_spills=False,
                         reorder_cspec_operands=False)
    with pytest.raises(CodegenError, match="disabled"):
        proc.run("build", 40)


def test_ablation_regalloc_choice(benchmark):
    def run_pair():
        ls = measure(ALL_APPS["query"], backend="icode", regalloc="linear")
        gc = measure(ALL_APPS["query"], backend="icode", regalloc="color")
        return ls, gc

    ls, gc = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    assert ls.correct and gc.correct
    # both allocators produce working code of similar quality; the cost
    # of producing it differs (Figure 7's subject)
    assert abs(ls.dynamic_cycles - gc.dynamic_cycles) < \
        0.2 * ls.dynamic_cycles
    benchmark.extra_info["codegen_cycles"] = {
        "linear_scan": ls.codegen_cycles, "graph_coloring": gc.codegen_cycles,
    }
