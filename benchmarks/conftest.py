"""Shared fixtures for the benchmark suite.

Measurements on the simulated machine are deterministic; the expensive part
is the Python-side compilation, so results are cached per session.
"""

from __future__ import annotations

import pytest

from repro.apps import ALL_APPS
from repro.apps.harness import measure

_CACHE: dict = {}


def cached_measure(name, backend="icode", regalloc="linear",
                   static_opt="lcc", **extra):
    key = (name, backend, regalloc, static_opt, tuple(sorted(extra.items())))
    if key not in _CACHE:
        _CACHE[key] = measure(
            ALL_APPS[name], backend=backend, regalloc=regalloc,
            static_opt=static_opt, **extra,
        )
    return _CACHE[key]


@pytest.fixture(scope="session")
def measured():
    """measured(name, ...) -> MeasureResult with session-level caching."""
    return cached_measure
