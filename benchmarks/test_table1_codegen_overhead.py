"""Table 1: code generation overhead.

Regenerates the paper's Table 1 — cycles per generated instruction for
{one large cspec, many small cspecs} x {dynamic locals, free variables},
VCODE vs ICODE — and additionally benchmarks the *wall-clock* speed of each
configuration's full specify+compile pipeline with pytest-benchmark.

Paper values: VCODE 96.8 (large/dyn-locals) to 260.1 (small/freevars);
ICODE 1019.7 to 1261.9; ICODE roughly an order of magnitude slower.
"""

from __future__ import annotations

import pytest

from repro.apps.table1 import TABLE1_ROWS, run_row

_ROWS = list(TABLE1_ROWS.items())


@pytest.mark.parametrize("row_name,factory", _ROWS,
                         ids=[r.replace(" ", "-").replace(",", "")
                              for r, _ in _ROWS])
@pytest.mark.parametrize("backend", ["vcode", "icode"])
def test_table1_row(benchmark, row_name, factory, backend):
    source = factory()

    def build_once():
        return run_row(source, backend)

    stats, fn, _proc = benchmark(build_once)
    # sanity: the generated function computes
    assert isinstance(fn(5), int)
    cpi = stats.cycles_per_instruction()
    if backend == "vcode":
        assert 80 < cpi < 500, cpi          # paper band: 96.8 - 260.1
    else:
        assert 800 < cpi < 2500, cpi        # paper band: 1019.7 - 1261.9
    benchmark.extra_info["modeled_cycles_per_instruction"] = round(cpi, 1)
    benchmark.extra_info["generated_instructions"] = \
        stats.generated_instructions


def test_table1_icode_order_of_magnitude(benchmark):
    """The headline comparison of Table 1, as one benchmarkable check."""

    def measure_ratios():
        ratios = {}
        for row_name, factory in TABLE1_ROWS.items():
            source = factory()
            v, _, _ = run_row(source, "vcode")
            i, _, _ = run_row(source, "icode")
            ratios[row_name] = (
                i.cycles_per_instruction() / v.cycles_per_instruction()
            )
        return ratios

    ratios = benchmark.pedantic(measure_ratios, rounds=1, iterations=1)
    for row, ratio in ratios.items():
        assert 3.0 < ratio < 20.0, (row, ratio)
    benchmark.extra_info["icode_over_vcode"] = {
        k: round(v, 1) for k, v in ratios.items()
    }
