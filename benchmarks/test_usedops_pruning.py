"""Section 5.2: link-time pruning of the ICODE-to-binary translator.

Paper: "This simple trick cuts the size of the ICODE library by up to an
order of magnitude for most programs, reducing them to approximately the
size of equivalent C programs."  Our simulated ISA is smaller than ICODE's
several-hundred-opcode cross product, so the achievable factor is smaller;
the *shape* — most programs touch a small fraction of the instruction set —
is what this reproduces.
"""

from __future__ import annotations

from repro import TccCompiler
from repro.analysis import collect_used_ops
from repro.analysis.usedops import FULL_ISA_SIZE
from repro.apps import ALL_APPS


def test_usedops_pruning(benchmark):
    tcc = TccCompiler()

    def analyze_all():
        return {
            name: collect_used_ops(tcc.compile(app.source))
            for name, app in ALL_APPS.items()
        }

    reports = benchmark(analyze_all)
    factors = {name: r.reduction_factor for name, r in reports.items()}
    assert all(f > 1.5 for f in factors.values()), factors
    assert max(factors.values()) >= 4.0, factors
    # every app uses well under half the instruction set
    assert all(r.used_count < FULL_ISA_SIZE / 2 for r in reports.values())
    benchmark.extra_info["reduction_factors"] = {
        k: round(v, 1) for k, v in factors.items()
    }
