#!/usr/bin/env python
"""Dynamic marshaling / unmarshaling — the paper's RPC scenario (6.2).

Given only a run-time format string, `C builds

* a marshaling function with that many *parameters* (created via the
  ``param`` special form in a loop), storing each into a message buffer, and
* an unmarshaling call with that many *arguments* (via the push/apply
  special forms), reading the buffer and invoking the handler.

"This ability goes beyond mere performance: ANSI C simply does not provide
mechanisms for dynamically constructing function calls."

Run:  python examples/rpc_marshaling.py
"""

from repro import TccCompiler

SOURCE = r"""
int msg_buf[16];

/* Build: int f(a0, .., a{n-1}) { msg_buf[i] = ai; ...; return n; } */
int make_marshaler(char *fmt) {
    int i;
    void cspec body = `{};
    for (i = 0; fmt[i]; i++) {
        int vspec p = param(int, i);
        body = `{ body; ((int *)$msg_buf)[$i] = p; };
    }
    body = `{ body; return $i; };
    return (int)compile(body, int);
}

/* The RPC handler on the "server" side. */
int handler(int a, int b, int c, int d) {
    return a + 10 * b + 100 * c + 1000 * d;
}

/* Build: int g(void) { return handler(msg_buf[0], .., msg_buf[n-1]); } */
int make_unmarshaler(char *fmt) {
    int i;
    int cspec call;
    push_init();
    for (i = 0; fmt[i]; i++)
        push(`(((int *)$msg_buf)[$i]));
    call = apply(handler);
    return (int)compile(`{ return call; }, int);
}
"""


def main() -> None:
    process = TccCompiler().compile(SOURCE).start()
    fmt = process.intern_string("iiii")

    marshal = process.function(
        process.run("make_marshaler", fmt), "iiii", "i", "marshal"
    )
    unmarshal = process.function(
        process.run("make_unmarshaler", fmt), "", "i", "unmarshal"
    )

    args = (7, 3, 9, 1)
    n, m_cycles = process.run_cycles(marshal, *args)
    print(f"marshal{args} stored {n} words "
          f"({m_cycles} cycles, straight-line stores)")

    buf_addr = process.program.tu.globals["msg_buf"].address
    words = process.machine.memory.read_words(buf_addr, n)
    print(f"message buffer: {words}")

    result, u_cycles = process.run_cycles(unmarshal)
    expected = 7 + 10 * 3 + 100 * 9 + 1000 * 1
    print(f"unmarshal() -> handler(...) = {result} "
          f"(expected {expected}, {u_cycles} cycles)")
    assert result == expected and words == list(args)

    # a different format string, without recompiling anything statically
    fmt2 = process.intern_string("ii")
    marshal2 = process.function(
        process.run("make_marshaler", fmt2), "ii", "i", "marshal2"
    )
    assert marshal2(5, 6) == 2
    print("make_marshaler('ii') generated a 2-argument variant on the fly")


if __name__ == "__main__":
    main()
