#!/usr/bin/env python
"""Quickstart: compile and run your first `C (Tick-C) program.

`C extends ANSI C with two operators:

* backquote  `expr   — specify code to be generated at run time,
* $expr             — bind the *current* value of expr into that code as a
                      run-time constant,

plus the types ``T cspec`` (a code specification evaluating to T) and
``T vspec`` (a dynamically created variable).  ``compile(cspec, T)`` turns a
specification into executable code and returns the function pointer.

Run:  python examples/quickstart.py
"""

from repro import TccCompiler

SOURCE = r"""
/* The paper's hello-world (section 3). */
void hello(void) {
    void cspec code = `{ print_str("hello, dynamic world!\n"); };
    ((void (*)(void))compile(code, void))();
}

/* Specialization: make_adder returns a function hardwired to add n. */
int make_adder(int n) {
    int vspec x = param(int, 0);
    int cspec body = `(x + $n);
    return (int)compile(body, int);
}

/* Composition: build sum_{i=1..n} (i * x) one term at a time. */
int make_poly(int n) {
    int i;
    int vspec x = param(int, 0);
    int cspec acc = `0;
    for (i = 1; i <= n; i++)
        acc = `(acc + $i * x);
    return (int)compile(acc, int);
}
"""


def main() -> None:
    tcc = TccCompiler()
    program = tcc.compile(SOURCE)
    process = program.start()          # a fresh simulated RISC machine

    # 1. hello world: specification + instantiation + execution
    process.run("hello")
    print(process.machine.drain_output(), end="")

    # 2. a specialized adder: the 10 is an immediate in the generated code
    add10 = process.function(process.run("make_adder", 10), "i", "i")
    print(f"add10(32) = {add10(32)}")

    stats = process.last_codegen_stats
    print(
        f"  generated {stats.generated_instructions} instructions in "
        f"{stats.total_cycles()} modeled cycles "
        f"({stats.cycles_per_instruction():.0f} cycles/instruction)"
    )

    # 3. dynamic composition: code built piece by piece in a loop
    poly = process.function(process.run("make_poly", 4), "i", "i")
    # 1x + 2x + 3x + 4x = 10x
    print(f"poly(7)   = {poly(7)}   (expected {10 * 7})")

    # every run on the simulated machine is cycle-accounted
    _, cycles = process.run_cycles(poly, 7)
    print(f"  one call took {cycles} machine cycles")


if __name__ == "__main__":
    main()
