#!/usr/bin/env python
"""A small query-language JIT — the paper's database scenario (6.2).

A query is a conjunction of field comparisons.  The classic implementation
interprets the query description for every record; with `C the query is
compiled to straight-line machine code once and then applied to the whole
table.  This example builds both, checks they agree, and reports the
cycle counts and the cross-over point.

Run:  python examples/query_compiler.py
"""

import random

from repro import TccCompiler

SOURCE = r"""
/* Dynamic: compose one comparison cspec per conjunct. */
int compile_query(int *desc, int nq) {
    int j;
    int * vspec rec = param(int *, 0);
    int cspec q = `1;
    for (j = 0; j < nq; j++) {
        int f, o, v;
        f = desc[3 * j];
        o = desc[3 * j + 1];
        v = desc[3 * j + 2];
        if (o == 0)      q = `(q && rec[$f] <  $v);
        else if (o == 1) q = `(q && rec[$f] == $v);
        else             q = `(q && rec[$f] >  $v);
    }
    return (int)compile(`{ return q; }, int);
}

/* Static baseline: per-record interpretation of the description. */
int match_interp(int *rec, int *desc, int nq) {
    int j, ok;
    for (j = 0; j < nq; j++) {
        int f, o, v;
        f = desc[3 * j];
        o = desc[3 * j + 1];
        v = desc[3 * j + 2];
        if (o == 0)      ok = rec[f] <  v;
        else if (o == 1) ok = rec[f] == v;
        else             ok = rec[f] >  v;
        if (!ok) return 0;
    }
    return 1;
}

int scan_interp(int *db, int n, int stride, int *desc, int nq) {
    int i, count;
    count = 0;
    for (i = 0; i < n; i++)
        count = count + match_interp(db + i * stride, desc, nq);
    return count;
}

int scan_compiled(int *db, int n, int stride, int (*match)(int *)) {
    int i, count;
    count = 0;
    for (i = 0; i < n; i++)
        count = count + match(db + i * stride);
    return count;
}
"""

NRECORDS = 1000
NFIELDS = 4
# SELECT * WHERE f0 > 2000 AND f1 < 8000 AND f3 == f3-constant
QUERY = [(0, 2, 2000), (1, 0, 8000), (3, 2, 4444)]


def main() -> None:
    rng = random.Random(2026)
    records = [
        [rng.randrange(0, 10000) for _ in range(NFIELDS)]
        for _ in range(NRECORDS)
    ]
    records[NRECORDS // 2][3] = 4444  # guarantee at least one hit candidate

    process = TccCompiler().compile(SOURCE).start()
    mem = process.machine.memory
    db = mem.alloc_words([v for rec in records for v in rec])
    desc = mem.alloc_words([x for c in QUERY for x in c])

    # dynamic: compile the query, then drive it from the compiled scanner
    match_entry = process.run("compile_query", desc, len(QUERY))
    scan = process.static_function("scan_compiled")
    compiled_count, dyn_cycles = process.run_cycles(
        scan, db, NRECORDS, NFIELDS, match_entry
    )

    # static: interpret the query description per record
    scan_i = process.static_function("scan_interp")
    interp_count, static_cycles = process.run_cycles(
        scan_i, db, NRECORDS, NFIELDS, desc, len(QUERY)
    )

    ops = {0: lambda a, b: a < b, 1: lambda a, b: a == b,
           2: lambda a, b: a > b}
    oracle = sum(
        1 for rec in records
        if all(ops[o](rec[f], v) for f, o, v in QUERY)
    )

    print(f"records: {NRECORDS}, query: {len(QUERY)} comparisons")
    print(f"matches: compiled={compiled_count} interpreted={interp_count} "
          f"oracle={oracle}")
    assert compiled_count == interp_count == oracle

    codegen = process.cost.lifetime.total_cycles()
    print(f"compiled scan:    {dyn_cycles:>9d} cycles")
    print(f"interpreted scan: {static_cycles:>9d} cycles "
          f"({static_cycles / dyn_cycles:.2f}x slower)")
    print(f"query compilation: {codegen:>8d} cycles "
          f"-> pays for itself after "
          f"{-(-codegen // (static_cycles - dyn_cycles))} scan(s)")


if __name__ == "__main__":
    main()
