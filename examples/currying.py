#!/usr/bin/env python
"""Currying and information hiding (paper 6.2, "Other uses").

"`C-enabled currying can be used to associate functions with state that is
not visible to the caller ... dynamically generating a wrapper function
that calls the original function with internally bound state."

Here a generic ``lookup(table, size, key)`` is specialized into closures —
real function pointers with the table baked in — so callers hold a plain
``int (*)(int)`` and never see (or need) the table pointer.  Each wrapper
is straight-line code with the bound arguments as immediates.

Run:  python examples/currying.py
"""

from repro import TccCompiler

SOURCE = r"""
/* the generic function: three arguments, fully general */
int lookup(int *table, unsigned size, int key) {
    return table[(unsigned)key % size];
}

/* curry the first two arguments: returns int (*)(int) */
int bind_table(int *table, unsigned size) {
    int vspec key = param(int, 0);
    int cspec body = `(lookup((int *)$table, $size, key));
    return (int)compile(body, int);
}

/* or go further and inline the callee entirely */
int bind_table_inline(int *table, unsigned size) {
    int vspec key = param(int, 0);
    int cspec body = `(((int *)$table)[(unsigned)key % $size]);
    return (int)compile(body, int);
}
"""


def main() -> None:
    process = TccCompiler().compile(SOURCE).start()
    mem = process.machine.memory

    table_a = mem.alloc_words([10 * i for i in range(8)])
    table_b = mem.alloc_words([100 + i for i in range(16)])

    get_a = process.function(process.run("bind_table", table_a, 8),
                             "i", "i", "get_a")
    get_b = process.function(process.run("bind_table", table_b, 16),
                             "i", "i", "get_b")
    get_a_fast = process.function(
        process.run("bind_table_inline", table_a, 8), "i", "i", "get_a_fast"
    )

    print("two closures over different hidden tables:")
    print(f"  get_a(3)  = {get_a(3)}   (table_a[3] = 30)")
    print(f"  get_b(3)  = {get_b(3)}  (table_b[3] = 103)")
    assert get_a(3) == 30 and get_b(3) == 103

    _, wrapped = process.run_cycles(get_a, 11)       # 11 % 8 = 3
    _, inlined = process.run_cycles(get_a_fast, 11)
    assert get_a_fast(11) == get_a(11) == 30
    print(f"\nwrapper-call closure:  {wrapped} cycles per call")
    print(f"fully inlined closure: {inlined} cycles per call "
          "(call overhead and the modulo both specialized away)")


if __name__ == "__main__":
    main()
