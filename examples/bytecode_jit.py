#!/usr/bin/env python
"""A just-in-time compiler for a tiny bytecode — the paper's headline
application class ("just in time compilers [17]", section 1).

The bytecode is a two-register accumulator machine:

    opcode 0: LI   reg, imm     reg = imm
    opcode 1: MOV  reg, reg2    reg = reg2
    opcode 2: ADD  reg, reg2    reg = reg + reg2
    opcode 3: SUBI reg, imm     reg = reg - imm
    opcode 4: MULI reg, imm     reg = reg * imm
    opcode 5: JNZ  reg, target  if (reg) goto bytecode[target]
    opcode 6: RET  reg

Each instruction is three words.  The JIT walks the bytecode once at
specification time (a `C switch), composing one cspec per instruction and
using the make_label()/jump() special forms for branch targets; compile()
then turns the whole thing into straight-line machine code.  The baseline
is the classic bytecode interpreter loop, statically compiled.

Run:  python examples/bytecode_jit.py
"""

from repro import TccCompiler

SOURCE = r"""
int jit(int *bc, int n) {
    int pc, op, a, b;
    int vspec r0 = local(int);
    int vspec r1 = local(int);
    int vspec arg = param(int, 0);
    void cspec labels[64];
    void cspec body;
    void cspec prologue = `{ r0 = 0; r1 = arg; };

    /* every bytecode index gets a dynamic label (cheap: a closure) */
    for (pc = 0; pc < n; pc++)
        labels[pc] = make_label();

    body = prologue;
    for (pc = 0; pc < n; pc++) {
        void cspec mark = labels[pc];
        void cspec step;
        op = bc[3 * pc];
        a = bc[3 * pc + 1];
        b = bc[3 * pc + 2];
        switch (op) {
        case 0:  /* LI */
            if (a == 0) step = `{ r0 = $b; };
            else        step = `{ r1 = $b; };
            break;
        case 1:  /* MOV */
            if (a == 0) step = `{ r0 = r1; };
            else        step = `{ r1 = r0; };
            break;
        case 2:  /* ADD */
            if (a == 0) step = `{ r0 = r0 + r1; };
            else        step = `{ r1 = r1 + r0; };
            break;
        case 3:  /* SUBI */
            if (a == 0) step = `{ r0 = r0 - $b; };
            else        step = `{ r1 = r1 - $b; };
            break;
        case 4:  /* MULI (strength-reduced against the immediate) */
            if (a == 0) step = `{ r0 = r0 * $b; };
            else        step = `{ r1 = r1 * $b; };
            break;
        case 5: {  /* JNZ */
            void cspec target = labels[b];
            void cspec hop = jump(target);
            if (a == 0) step = `{ if (r0) hop; };
            else        step = `{ if (r1) hop; };
            break;
        }
        default:  /* RET */
            if (a == 0) step = `{ return r0; };
            else        step = `{ return r1; };
        }
        body = `{ body; mark; step; };
    }
    return (int)compile(body, int);
}

/* The conventional implementation: a threaded interpreter loop. */
int interp(int *bc, int n, int arg) {
    int pc, op, a, b;
    int r[2];
    r[0] = 0;
    r[1] = arg;
    pc = 0;
    while (pc < n) {
        op = bc[3 * pc];
        a = bc[3 * pc + 1];
        b = bc[3 * pc + 2];
        pc = pc + 1;
        switch (op) {
        case 0: r[a] = b; break;
        case 1: r[a] = r[1 - a]; break;
        case 2: r[a] = r[a] + r[1 - a]; break;
        case 3: r[a] = r[a] - b; break;
        case 4: r[a] = r[a] * b; break;
        case 5: if (r[a]) pc = b; break;
        default: return r[a];
        }
    }
    return 0;
}
"""

# sum 1..arg:   r0 += r1; r1 -= 1; loop while r1 != 0; return r0
PROGRAM = [
    (0, 0, 0),   # 0: LI   r0, 0
    (2, 0, 0),   # 1: ADD  r0, r1       <- loop target
    (3, 1, 1),   # 2: SUBI r1, 1
    (5, 1, 1),   # 3: JNZ  r1, 1
    (6, 0, 0),   # 4: RET  r0
]


def oracle(arg: int) -> int:
    return sum(range(1, arg + 1))


def main() -> None:
    process = TccCompiler().compile(SOURCE).start()
    flat = [x for instr in PROGRAM for x in instr]
    bc = process.machine.memory.alloc_words(flat)

    entry = process.run("jit", bc, len(PROGRAM))
    jitted = process.function(entry, "i", "i", "jitted")
    stats = process.last_codegen_stats

    interp = process.static_function("interp")
    arg = 100
    jit_result, jit_cycles = process.run_cycles(jitted, arg)
    int_result, int_cycles = process.run_cycles(interp, bc, len(PROGRAM), arg)
    assert jit_result == int_result == oracle(arg), (jit_result, int_result)

    print(f"bytecode program: {len(PROGRAM)} instructions; arg = {arg}")
    print(f"sum 1..{arg} = {jit_result}")
    print(f"JIT-compiled run:  {jit_cycles:6d} cycles")
    print(f"interpreted run:   {int_cycles:6d} cycles "
          f"({int_cycles / jit_cycles:.1f}x slower)")
    print(f"JIT compile cost:  {stats.total_cycles()} cycles "
          f"({stats.generated_instructions} instructions) -> amortized "
          f"after {-(-stats.total_cycles() // (int_cycles - jit_cycles))} "
          "run(s)")


if __name__ == "__main__":
    main()
