#!/usr/bin/env python
"""Composable data pipelines — the paper's networking scenario (6.2, cmp).

Protocol stacks want modular layers (checksum, byteswap, encryption, ...)
but paying one pass over the data per layer is expensive.  With `C each
layer is a code specification over shared vspecs, and the layers compose
into a single loop at run time: all the data handling happens in one pass,
with no function-call overhead.

Run:  python examples/vector_pipeline.py
"""

from repro import TccCompiler
from repro.target.isa import wrap32

SOURCE = r"""
/* Each "layer" transforms vspec v in place; acc accumulates a checksum. */
int make_pipeline(int want_bswap, int want_xor, int key) {
    int * vspec dst = param(int *, 0);
    int * vspec src = param(int *, 1);
    int vspec n = param(int, 2);
    int vspec v = local(int);
    int vspec acc = local(int);

    void cspec step = `{};
    if (want_bswap)
        step = `{ step; v = ((v & 255) << 24) | ((v & 65280) << 8)
                        | ((v >> 8) & 65280) | ((v >> 24) & 255); };
    if (want_xor)
        step = `{ step; v = v ^ $key; };

    return (int)compile(`{
        int i;
        acc = 0;
        for (i = 0; i < n; i++) {
            v = src[i];
            step;
            dst[i] = v;
            acc = acc + v;
        }
        return acc;
    }, int);
}

/* The conventional modular version: one indirect call per layer per word. */
int layer_bswap(int v) {
    return ((v & 255) << 24) | ((v & 65280) << 8)
         | ((v >> 8) & 65280) | ((v >> 24) & 255);
}
int pipeline_static(int *dst, int *src, int n,
                    int (*l1)(int), int (*l2)(int)) {
    int i, v, acc;
    acc = 0;
    for (i = 0; i < n; i++) {
        v = src[i];
        if (l1) v = l1(v);
        if (l2) v = l2(v);
        dst[i] = v;
        acc = acc + v;
    }
    return acc;
}
"""

WORDS = 512
KEY = 0x5A5A5A5A


def bswap(v: int) -> int:
    u = v & 0xFFFFFFFF
    return wrap32(((u & 0xFF) << 24) | ((u & 0xFF00) << 8) |
                  ((u >> 8) & 0xFF00) | ((u >> 24) & 0xFF))


def main() -> None:
    process = TccCompiler().compile(SOURCE).start()
    mem = process.machine.memory
    payload = [wrap32(i * 0x01010101 + 5) for i in range(WORDS)]
    src = mem.alloc_words(payload)
    dst = mem.alloc_words([0] * WORDS)

    # compose byteswap + xor into one fused loop
    entry = process.run("make_pipeline", 1, 1, KEY)
    fused = process.function(entry, "iii", "i", "fused")
    got, dyn_cycles = process.run_cycles(fused, dst, src, WORDS)

    expected = wrap32(sum(wrap32(bswap(v) ^ KEY) for v in payload))
    assert got == expected, (got, expected)
    print(f"fused pipeline checksum = {got:#x} ({dyn_cycles} cycles)")

    # the xor layer cannot be a plain function pointer (it needs the key),
    # so the static comparison runs just the byteswap layer
    entry2 = process.run("make_pipeline", 1, 0, 0)
    fused_bswap = process.function(entry2, "iii", "i")
    got_dyn, dyn2 = process.run_cycles(fused_bswap, dst, src, WORDS)

    static = process.static_function("pipeline_static")
    l1 = process.static_entry("layer_bswap")
    got_static, static_cycles = process.run_cycles(
        static, dst, src, WORDS, l1, 0
    )
    assert got_dyn == got_static
    print(f"byteswap only: composed {dyn2} cycles vs "
          f"function-pointer version {static_cycles} cycles "
          f"({static_cycles / dyn2:.2f}x)")


if __name__ == "__main__":
    main()
