#!/usr/bin/env python
"""The xv Blur case study (paper 6.2, "Putting it all together").

Blur convolves the image with a k x k all-ones kernel.  The kernel size is
a run-time constant, so `C unrolls both kernel loops and folds the offset
arithmetic; only the per-pixel boundary checks stay dynamic.  The example
reports dynamic vs lcc-level vs gcc-level cycle counts and the dynamic
compilation cost, mirroring the paper's table.

Run:  python examples/image_blur.py          (small image)
      REPRO_BLUR_FULL=1 python examples/image_blur.py   (paper's 640x480;
                                                         slow: the machine
                                                         is interpreted)
"""

from repro.apps import blur_app
from repro.apps.harness import measure


def main() -> None:
    w, h, k = blur_app.WIDTH, blur_app.HEIGHT, blur_app.KSIZE
    print(f"blurring a {w}x{h} image with a {k}x{k} all-ones kernel\n")

    r_lcc = measure(blur_app.APP, backend="icode", static_opt="lcc")
    r_gcc = measure(blur_app.APP, backend="icode", static_opt="gcc")
    assert r_lcc.correct and r_gcc.correct

    print(f"{'version':28s} {'cycles':>12s} {'vs dynamic':>11s}")
    print(f"{'`C dynamic (ICODE)':28s} {r_lcc.dynamic_cycles:12d} "
          f"{1.0:10.2f}x")
    print(f"{'static, lcc level':28s} {r_lcc.static_cycles:12d} "
          f"{r_lcc.speedup:10.2f}x")
    print(f"{'static, gcc level':28s} {r_gcc.static_cycles:12d} "
          f"{r_gcc.speedup:10.2f}x")
    print()
    print(f"dynamic compilation: {r_lcc.codegen_cycles} cycles "
          f"({r_lcc.generated_instructions} instructions, "
          f"{r_lcc.cycles_per_instruction:.0f} cycles/instruction)")
    print(f"paper (640x480, SparcStation 5): dynamic 1.08s, "
          f"lcc 1.96s (1.81x), gcc -O 1.04s, codegen 0.01s")


if __name__ == "__main__":
    main()
