"""Struct support: layout, member access, assignment, pointers, dynamic
code over struct free variables."""

import pytest

from repro.errors import ParseError, TypeError_
from repro.frontend import parse, analyze
from repro.frontend import typesys as T
from tests.conftest import BACKENDS, compile_c


class TestLayout:
    def _struct(self, source, tag):
        from repro.frontend.parser import Parser
        from repro.frontend.lexer import tokenize

        parser = Parser(tokenize(source))
        parser.parse_translation_unit()
        return parser.structs[tag]

    def test_sequential_int_fields(self):
        s = self._struct("struct p { int x; int y; };", "p")
        assert s.size == 8
        assert s.field("x") == (T.INT, 0)
        assert s.field("y") == (T.INT, 4)

    def test_char_padding_before_int(self):
        s = self._struct("struct p { char c; int i; };", "p")
        assert s.field("i")[1] == 4
        assert s.size == 8

    def test_double_alignment(self):
        s = self._struct("struct p { char c; double d; int i; };", "p")
        assert s.field("d")[1] == 8
        assert s.align == 8
        assert s.size == 24

    def test_nested_struct_field(self):
        s = self._struct(
            "struct inner { int a; int b; };"
            "struct outer { struct inner lo; struct inner hi; };",
            "outer",
        )
        assert s.size == 16
        assert s.field("hi")[1] == 8

    def test_array_member(self):
        s = self._struct("struct p { int v[3]; char tag; };", "p")
        assert s.field("tag")[1] == 12
        assert s.size == 16

    def test_self_referential_pointer(self):
        s = self._struct("struct node { int v; struct node *next; };", "node")
        assert s.size == 8
        next_ty = s.field("next")[0]
        assert next_ty.is_pointer() and next_ty.base is s

    def test_missing_member_rejected(self):
        with pytest.raises(TypeError_, match="no member"):
            analyze(parse(
                "struct p { int x; };"
                "int f(struct p *p) { return p->z; }"
            ))

    def test_incomplete_member_rejected(self):
        with pytest.raises(ParseError, match="incomplete"):
            parse("struct node { int v; struct node inner; };")

    def test_empty_struct_rejected(self):
        with pytest.raises(ParseError, match="members"):
            parse("struct p { };")

    def test_redefinition_rejected(self):
        with pytest.raises(ParseError, match="redefinition"):
            parse("struct p { int x; }; struct p { int y; };")

    def test_duplicate_member_rejected(self):
        with pytest.raises(ParseError, match="duplicate"):
            parse("struct p { int x; int x; };")


class TestSemantics:
    def test_dot_requires_struct(self):
        with pytest.raises(TypeError_, match="struct"):
            compile_c("int f(int x) { return x.y; }")

    def test_arrow_requires_pointer(self):
        with pytest.raises(TypeError_, match="pointer"):
            compile_c(
                "struct p { int x; };"
                "int f(void) { struct p q; return q->x; }"
            )

    def test_struct_param_by_value_rejected(self):
        with pytest.raises(TypeError_, match="pointer"):
            compile_c("struct p { int x; }; int f(struct p q) { return 0; }")

    def test_struct_return_rejected(self):
        with pytest.raises(TypeError_, match="pointer"):
            compile_c(
                "struct p { int x; }; struct p f(void) { struct p q; "
                "return q; }"
            )

    def test_struct_assignment_requires_same_tag(self):
        with pytest.raises(TypeError_):
            compile_c(
                "struct a { int x; }; struct b { int x; };"
                "void f(void) { struct a p; struct b q; p = q; }"
            )

    def test_sizeof_struct(self):
        proc = compile_c(
            "struct p { int x; double d; };"
            "int f(void) { return sizeof(struct p); }"
        )
        assert proc.run("f") == 16


EXEC_SRC = r"""
struct vec { int x; int y; int z; };
struct pair { struct vec a; struct vec b; };

int dot(struct vec *u, struct vec *v) {
    return u->x * v->x + u->y * v->y + u->z * v->z;
}

int run(void) {
    struct pair p;
    struct vec t;
    p.a.x = 1; p.a.y = 2; p.a.z = 3;
    p.b = p.a;           /* nested struct copy */
    p.b.y = 10;
    t = p.b;
    return dot(&p.a, &t);   /* 1 + 20 + 9 */
}

int sum_array(int n) {
    struct vec vs[8];
    int i, s;
    for (i = 0; i < n; i++) {
        vs[i].x = i;
        vs[i].y = 2 * i;
        vs[i].z = 0;
    }
    s = 0;
    for (i = 0; i < n; i++)
        s = s + vs[i].x + vs[i].y;
    return s;
}
"""


class TestExecution:
    def test_interpreter(self):
        proc = compile_c(EXEC_SRC)
        assert proc.run("run") == 30
        assert proc.run("sum_array", 5) == sum(3 * i for i in range(5))

    @pytest.mark.parametrize("opt", ["lcc", "gcc"])
    def test_static_compiled(self, opt):
        proc = compile_c(EXEC_SRC, static_opt=opt)
        assert proc.static_function("run")() == 30
        assert proc.static_function("sum_array")(5) == 30

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_dynamic_code_over_struct_freevar(self, backend):
        src = r"""
        struct acc { int total; int count; };
        struct acc state;
        int build(void) {
            int vspec v = param(int, 0);
            void cspec c = `{
                state.total = state.total + v;
                state.count = state.count + 1;
                return state.total * 100 + state.count;
            };
            return (int)compile(c, int);
        }
        """
        proc = compile_c(src, backend=backend)
        fn = proc.function(proc.run("build"), "i", "i")
        assert fn(5) == 5 * 100 + 1
        assert fn(7) == 12 * 100 + 2

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_dynamic_code_through_struct_pointer_param(self, backend):
        src = r"""
        struct vec { int x; int y; int z; };
        int build(void) {
            struct vec * vspec v = param(struct vec *, 0);
            return (int)compile(`(v->x + v->y * v->z), int);
        }
        """
        proc = compile_c(src, backend=backend)
        mem = proc.machine.memory
        addr = mem.alloc_words([3, 4, 5])
        fn = proc.function(proc.run("build"), "i", "i")
        assert fn(addr) == 3 + 4 * 5

    def test_dollar_of_struct_member(self):
        src = r"""
        struct cfg { int scale; int offset; };
        struct cfg c;
        int build(void) {
            int vspec x = param(int, 0);
            c.scale = 4;
            c.offset = 3;
            return (int)compile(`(x * $(c.scale) + $(c.offset)), int);
        }
        """
        proc = compile_c(src)
        fn = proc.function(proc.run("build"), "i", "i")
        assert fn(10) == 43
        from repro.target.isa import Op

        ops = [i.op for i in proc.machine.code.instructions[fn.entry:]]
        assert Op.MULI not in ops  # *4 strength-reduced to a shift
