"""Lexer unit tests."""

import pytest

from repro.errors import LexError
from repro.frontend.lexer import TokenKind, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)[:-1]]


def values(source):
    return [t.value for t in tokenize(source)[:-1]]


class TestBasicTokens:
    def test_empty_source_yields_only_eof(self):
        toks = tokenize("")
        assert len(toks) == 1
        assert toks[0].kind is TokenKind.EOF

    def test_identifier(self):
        (tok,) = tokenize("foo_bar1")[:-1]
        assert tok.kind is TokenKind.IDENT
        assert tok.value == "foo_bar1"

    def test_keyword_vs_identifier(self):
        toks = tokenize("int intx")[:-1]
        assert toks[0].kind is TokenKind.KEYWORD
        assert toks[1].kind is TokenKind.IDENT

    def test_cspec_and_vspec_are_keywords(self):
        toks = tokenize("cspec vspec")[:-1]
        assert all(t.kind is TokenKind.KEYWORD for t in toks)

    def test_tick_token(self):
        toks = tokenize("`4")[:-1]
        assert toks[0].kind is TokenKind.TICK
        assert toks[1].value == 4

    def test_dollar_token(self):
        toks = tokenize("$x")[:-1]
        assert toks[0].kind is TokenKind.DOLLAR
        assert toks[1].value == "x"

    def test_whitespace_and_newlines_skipped(self):
        assert values("a \t\n b") == ["a", "b"]


class TestNumbers:
    def test_decimal_int(self):
        assert values("42") == [42]

    def test_hex_int(self):
        assert values("0x1F") == [31]

    def test_hex_uppercase(self):
        assert values("0XFF") == [255]

    def test_int_suffixes_ignored(self):
        assert values("42u 42UL 42L") == [42, 42, 42]

    def test_float_literal(self):
        toks = tokenize("3.25")[:-1]
        assert toks[0].kind is TokenKind.FLOAT_LIT
        assert toks[0].value == 3.25

    def test_float_exponent(self):
        assert values("1e3 2.5e-2") == [1000.0, 0.025]

    def test_leading_dot_float(self):
        assert values(".5") == [0.5]

    def test_float_suffix(self):
        toks = tokenize("1.5f")[:-1]
        assert toks[0].value == 1.5

    def test_malformed_hex_rejected(self):
        with pytest.raises(LexError):
            tokenize("0x")

    def test_integer_then_member_like_dot(self):
        # "1..." should not swallow the range punctuator
        toks = tokenize("1 ...")[:-1]
        assert toks[0].value == 1
        assert toks[1].value == "..."


class TestStringsAndChars:
    def test_simple_string(self):
        assert values('"hello"') == ["hello"]

    def test_string_escapes(self):
        assert values(r'"a\n\t\\\""') == ['a\n\t\\"']

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"oops')

    def test_bad_escape(self):
        with pytest.raises(LexError):
            tokenize(r'"\q"')

    def test_char_literal(self):
        assert values("'A'") == [65]

    def test_char_escape(self):
        assert values(r"'\n'") == [10]

    def test_unterminated_char(self):
        with pytest.raises(LexError):
            tokenize("'a")


class TestPunctuation:
    def test_longest_match(self):
        assert values("<<= << <") == ["<<=", "<<", "<"]

    def test_compound_assignment_ops(self):
        ops = "+= -= *= /= %= &= |= ^= >>="
        assert values(ops) == ops.split()

    def test_arrow_and_increment(self):
        assert values("-> ++ --") == ["->", "++", "--"]

    def test_unknown_character(self):
        with pytest.raises(LexError):
            tokenize("@")


class TestComments:
    def test_line_comment(self):
        assert values("a // comment\n b") == ["a", "b"]

    def test_block_comment(self):
        assert values("a /* x \n y */ b") == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("/* never ends")

    def test_comment_between_tokens(self):
        assert values("1/*c*/+2") == [1, "+", 2]


class TestLocations:
    def test_line_and_column_tracking(self):
        toks = tokenize("a\n  b")[:-1]
        assert toks[0].loc.line == 1 and toks[0].loc.column == 1
        assert toks[1].loc.line == 2 and toks[1].loc.column == 3

    def test_error_location(self):
        try:
            tokenize("x\n  @")
        except LexError as e:
            assert e.loc.line == 2
            assert e.loc.column == 3
        else:
            pytest.fail("expected LexError")

    def test_token_helpers(self):
        tok = tokenize("while")[0]
        assert tok.is_keyword("while")
        assert not tok.is_punct("while")
