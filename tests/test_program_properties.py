"""Property tests over randomly generated *programs* (statements, loops,
conditionals), checked for agreement between the interpreter, both static
optimization levels, and both dynamic back ends."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro import TccCompiler, report
from tests.conftest import compile_c

# A tiny structured program generator: a sequence of statements over three
# int variables, with bounded loops so everything terminates.

_VARS = ("a", "b", "c")


@st.composite
def statements(draw, depth=0):
    kind = draw(st.integers(0, 5 if depth < 2 else 3))
    v = draw(st.sampled_from(_VARS))
    w = draw(st.sampled_from(_VARS))
    k = draw(st.integers(-20, 20))
    if kind == 0:
        return f"{v} = {w} + {k};"
    if kind == 1:
        op = draw(st.sampled_from(["+", "-", "*", "&", "|", "^"]))
        return f"{v} = {v} {op} {w};"
    if kind == 2:
        return f"{v} = {w} / {abs(k) + 1};"
    if kind == 3:
        rel = draw(st.sampled_from(["<", ">", "==", "!="]))
        body = draw(statements(depth=depth + 1))
        other = draw(statements(depth=depth + 1))
        return f"if ({v} {rel} {k}) {{ {body} }} else {{ {other} }}"
    if kind == 4:
        body = draw(statements(depth=depth + 1))
        n = draw(st.integers(1, 6))
        # One induction variable per nesting depth: an inner loop reusing
        # the outer loop's variable resets it and may never terminate.
        lv = "ij"[depth]
        return f"for ({lv} = 0; {lv} < {n}; {lv}++) {{ {body} }}"
    body = draw(statements(depth=depth + 1))
    return f"{{ {body} {v} = {v} ^ {k}; }}"


@st.composite
def programs(draw):
    stmts = draw(st.lists(statements(), min_size=1, max_size=6))
    return "\n        ".join(stmts)


@settings(max_examples=25, deadline=None)
@given(body=programs(), a=st.integers(-50, 50), b=st.integers(-50, 50),
       c=st.integers(-50, 50))
def test_program_agreement(body, a, b, c):
    src = f"""
    int f(int a, int b, int c) {{
        int i, j;
        {body}
        return a * 3 + b * 5 + c * 7;
    }}
    int build(void) {{
        int vspec a = param(int, 0);
        int vspec b = param(int, 1);
        int vspec c = param(int, 2);
        void cspec code = `{{
            int i, j;
            {body}
            return a * 3 + b * 5 + c * 7;
        }};
        return (int)compile(code, int);
    }}
    """
    results = {}
    proc = compile_c(src, static_opt="lcc")
    results["interp"] = proc.run("f", a, b, c)
    results["lcc"] = proc.static_function("f")(a, b, c)
    proc_gcc = compile_c(src, static_opt="gcc")
    results["gcc"] = proc_gcc.static_function("f")(a, b, c)
    for backend in ("vcode", "icode"):
        dyn = compile_c(src, backend=backend, compile_static=False)
        entry = dyn.run("build")
        results[backend] = dyn.function(entry, "iii", "i")(a, b, c)
    assert len(set(results.values())) == 1, (results, body)


@settings(max_examples=15, deadline=None)
@given(body=programs(), n=st.integers(0, 8), a=st.integers(-20, 20))
def test_unrolled_loop_agrees_with_dynamic_loop(body, n, a):
    """The same loop body unrolled via $n must equal the run-time loop."""
    src = f"""
    int build_unrolled(int n) {{
        int vspec a = param(int, 0);
        void cspec code = `{{
            int k, b, c, i, j;
            b = a; c = a;
            for (k = 0; k < $n; k++) {{ {body} }}
            return a + b * 2 + c * 3 + k;
        }};
        return (int)compile(code, int);
    }}
    int build_looped(void) {{
        int vspec a = param(int, 0);
        int vspec n = param(int, 1);
        void cspec code = `{{
            int k, b, c, i, j;
            b = a; c = a;
            for (k = 0; k < n; k++) {{ {body} }}
            return a + b * 2 + c * 3 + k;
        }};
        return (int)compile(code, int);
    }}
    """
    proc = compile_c(src, compile_static=False)
    unrolled = proc.function(proc.run("build_unrolled", n), "i", "i")
    looped = proc.function(proc.run("build_looped"), "ii", "i")
    assert unrolled(a) == looped(a, n), (body, n, a)


@settings(max_examples=15, deadline=None)
@given(body=programs(), a=st.integers(-50, 50), b=st.integers(-50, 50),
       c=st.integers(-50, 50))
def test_paranoid_verification_is_silent(body, a, b, c):
    """Every layer of the verifier suite, over randomly generated programs
    on every back-end configuration, reports nothing: the checkers never
    cry wolf on correct code (a diagnostic raises VerifyError here)."""
    src = f"""
    int f(int a, int b, int c) {{
        int i, j;
        {body}
        return a * 3 + b * 5 + c * 7;
    }}
    int build(void) {{
        int vspec a = param(int, 0);
        int vspec b = param(int, 1);
        int vspec c = param(int, 2);
        void cspec code = `{{
            int i, j;
            {body}
            return a * 3 + b * 5 + c * 7;
        }};
        return (int)compile(code, int);
    }}
    """
    report.reset()
    results = {}
    prog = TccCompiler(verify="paranoid").compile(src)
    for backend, regalloc in (("vcode", "linear"), ("icode", "linear"),
                              ("icode", "color")):
        proc = prog.start(backend=backend, regalloc=regalloc,
                          static_opt="gcc", verify="paranoid")
        entry = proc.run("build")
        results[(backend, regalloc)] = proc.function(entry, "iii", "i")(
            a, b, c)
        results[("static", backend, regalloc)] = proc.static_function("f")(
            a, b, c)
    stats = report.verify_stats()
    assert stats["checks_run"] > 0
    assert all(n == 0 for n in stats["diagnostics"].values()), stats
    assert len(set(results.values())) == 1, (results, body)
