"""The example scripts run end to end and print what they promise."""

import os
import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"
SRC = EXAMPLES.parent / "src"


def run_example(name: str) -> str:
    # The subprocess does not inherit pytest's ``pythonpath`` ini setting.
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(SRC), env.get("PYTHONPATH")) if p
    )
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=240,
        env=env,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_examples_directory_contents():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert "quickstart.py" in names
    assert len(names) >= 3


def test_quickstart():
    out = run_example("quickstart.py")
    assert "hello, dynamic world!" in out
    assert "add10(32) = 42" in out
    assert "poly(7)   = 70" in out


def test_query_compiler():
    out = run_example("query_compiler.py")
    assert "matches:" in out
    assert "pays for itself" in out


def test_rpc_marshaling():
    out = run_example("rpc_marshaling.py")
    assert "message buffer: [7, 3, 9, 1]" in out
    assert "= 1937" in out


def test_vector_pipeline():
    out = run_example("vector_pipeline.py")
    assert "fused pipeline checksum" in out


def test_bytecode_jit():
    out = run_example("bytecode_jit.py")
    assert "sum 1..100 = 5050" in out
    assert "x slower" in out


def test_currying():
    out = run_example("currying.py")
    assert "get_a(3)  = 30" in out
    assert "fully inlined closure" in out


@pytest.mark.slow
def test_image_blur():
    out = run_example("image_blur.py")
    assert "`C dynamic (ICODE)" in out
    assert "static, lcc level" in out
