"""VCODE back-end tests: getreg/putreg, spilling, one-pass emission."""

import pytest

from repro.core.operands import PReg, Spill
from repro.errors import CodegenError
from repro.runtime.closures import Vspec
from repro.runtime.costmodel import CostModel, Phase
from repro.target.cpu import Machine
from repro.target.isa import ALLOCATABLE_REGS, Op
from repro.frontend import typesys as T
from repro.vcode.machine import VcodeBackend


@pytest.fixture
def backend():
    machine = Machine()
    cost = CostModel()
    return VcodeBackend(machine, cost)


class TestGetregPutreg:
    def test_alloc_returns_physical_registers(self, backend):
        handle = backend.alloc_reg("i")
        assert isinstance(handle, PReg)
        assert handle.num in ALLOCATABLE_REGS

    def test_exhaustion_spills(self, backend):
        handles = [backend.alloc_reg("i") for _ in range(len(ALLOCATABLE_REGS))]
        extra = backend.alloc_reg("i")
        assert isinstance(extra, Spill)
        assert all(isinstance(h, PReg) for h in handles)

    def test_spills_disabled_raises(self):
        machine = Machine()
        be = VcodeBackend(machine, CostModel(), allow_spills=False)
        for _ in range(len(ALLOCATABLE_REGS)):
            be.alloc_reg("i")
        with pytest.raises(CodegenError, match="disabled"):
            be.alloc_reg("i")

    def test_putreg_recycles(self, backend):
        h = backend.alloc_reg("i")
        backend.free_reg(h)
        h2 = backend.alloc_reg("i")
        assert h2.num == h.num

    def test_spill_slot_recycled(self, backend):
        for _ in range(len(ALLOCATABLE_REGS)):
            backend.alloc_reg("i")
        s1 = backend.alloc_reg("i")
        backend.free_reg(s1)
        s2 = backend.alloc_reg("i")
        assert s2.idx == s1.idx

    def test_float_pool_separate(self, backend):
        fi = backend.alloc_reg("f")
        ii = backend.alloc_reg("i")
        assert fi.cls == "f" and ii.cls == "i"

    def test_vspec_storage_is_stable(self, backend):
        vspec = Vspec("local", T.INT, "i")
        a = backend.vspec_storage(vspec)
        b = backend.vspec_storage(vspec)
        assert a is b

    def test_getreg_cost_charged(self, backend):
        before = backend.cost.current.events[(Phase.EMIT, "getreg")]
        backend.alloc_reg("i")
        assert backend.cost.current.events[(Phase.EMIT, "getreg")] == before + 1


class TestEmission:
    def test_emitted_instruction_count_tracked(self, backend):
        r = backend.alloc_reg("i")
        backend.li(r, 5)
        backend.binop_imm("add", r, r, 1)
        assert backend.cost.current.generated_instructions == 2

    def test_spilled_operand_emits_loads(self, backend):
        for _ in range(len(ALLOCATABLE_REGS)):
            backend.alloc_reg("i")
        spilled = backend.alloc_reg("i")
        n_before = len(backend.body)
        backend.li(spilled, 7)
        # LI into scratch plus SW to the spill slot
        assert len(backend.body) == n_before + 2
        assert backend.body[-1].op is Op.SW

    def test_spilled_source_reloaded(self, backend):
        for _ in range(len(ALLOCATABLE_REGS)):
            backend.alloc_reg("i")
        spilled = backend.alloc_reg("i")
        reg = PReg(ALLOCATABLE_REGS[0], "i")
        backend.li(spilled, 7)
        n = len(backend.body)
        backend.binop("add", reg, spilled, reg)
        assert backend.body[n].op is Op.LW

    def test_lvalue_check_charged_for_spills(self, backend):
        for _ in range(len(ALLOCATABLE_REGS)):
            backend.alloc_reg("i")
        spilled = backend.alloc_reg("i")
        before = backend.cost.current.events[(Phase.EMIT, "lvalue_check")]
        backend.li(spilled, 1)
        assert backend.cost.current.events[
            (Phase.EMIT, "lvalue_check")
        ] > before

    def test_sltu_without_imm_form_materializes(self, backend):
        dst = backend.alloc_reg("i")
        src = backend.alloc_reg("i")
        backend.binop_imm("sltu", dst, src, 10)
        assert any(i.op is Op.SLTU for i in backend.body)

    def test_install_produces_callable_code(self, backend):
        r = backend.alloc_reg("i")
        backend.li(r, 41)
        backend.binop_imm("add", r, r, 1)
        backend.ret(r, "i")
        entry = backend.install()
        assert backend.machine.call(entry) == 42

    def test_install_only_once(self, backend):
        backend.ret(None)
        backend.install()
        with pytest.raises(CodegenError, match="already"):
            backend.install()

    def test_callee_saved_registers_restored(self, backend):
        machine = backend.machine
        r = backend.alloc_reg("i")
        backend.li(r, 1)
        backend.ret(r, "i")
        entry = backend.install()
        # pollute the register, call, and check it is preserved
        machine.cpu.regs[r.num] = 777
        machine.call(entry)
        assert machine.cpu.regs[r.num] == 777

    def test_labels_and_branches(self, backend):
        r = backend.alloc_reg("i")
        out = backend.new_label()
        backend.li(r, 1)
        backend.beqz(r, out)         # not taken
        backend.li(r, 42)
        backend.place(out)
        backend.ret(r, "i")
        entry = backend.install()
        assert backend.machine.call(entry) == 42

    def test_call_through_register(self, backend):
        machine = backend.machine
        from repro.target.isa import Instruction, Reg

        callee = machine.code.extend([
            Instruction(Op.MULI, Reg.RV, Reg.A0, 3),
            Instruction(Op.RET),
        ])
        machine.code.link()
        target = backend.alloc_reg("i")
        arg = backend.alloc_reg("i")
        backend.li(target, callee)
        backend.li(arg, 5)
        result = backend.call(target, [(arg, "i")], "i")
        backend.ret(result, "i")
        entry = backend.install()
        assert machine.call(entry) == 15

    def test_bind_param_copies_argument(self, backend):
        storage = backend.alloc_reg("i")
        backend.bind_param(storage, 0, "i")
        backend.binop_imm("add", storage, storage, 100)
        backend.ret(storage, "i")
        entry = backend.install()
        assert backend.machine.call(entry, (5,)) == 105

    def test_too_many_int_args_rejected(self, backend):
        args = [(backend.alloc_reg("i"), "i") for _ in range(7)]
        with pytest.raises(CodegenError, match="arguments"):
            backend.call(0, args, None)

    def test_hostcall_emission(self, backend):
        machine = backend.machine
        arg = backend.alloc_reg("i")
        backend.li(arg, 123)
        backend.hostcall("print_int", [(arg, "i")])
        backend.ret(None)
        entry = backend.install()
        machine.call(entry)
        assert machine.drain_output() == "123"

    def test_float_return(self, backend):
        f = backend.alloc_reg("f")
        backend.fli(f, 2.5)
        backend.fbinop("fmul", f, f, f)
        backend.ret(f, "f")
        entry = backend.install()
        assert backend.machine.call(entry, returns="f") == 6.25

    def test_spilled_code_still_correct(self, backend):
        """Fill every register, then compute with spilled values."""
        handles = [backend.alloc_reg("i") for _ in range(16)]
        for i, h in enumerate(handles):
            backend.li(h, i + 1)
        total = backend.alloc_reg("i")  # also spilled
        backend.li(total, 0)
        for h in handles:
            backend.binop("add", total, total, h)
        backend.ret(total, "i")
        entry = backend.install()
        assert backend.machine.call(entry) == sum(range(1, 17))
