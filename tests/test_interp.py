"""Spec-time interpreter tests (the non-dynamic parts of `C programs)."""

import pytest

from repro.errors import RuntimeTccError
from tests.conftest import compile_c


def run(source, fn="main", *args, **options):
    return compile_c(source, **options).run(fn, *args)


class TestExpressions:
    def test_arithmetic(self):
        assert run("int main(void) { return 2 + 3 * 4 - 1; }") == 13

    def test_division_truncates(self):
        assert run("int main(void) { return -7 / 2; }") == -3

    def test_wraparound(self):
        src = "int main(void) { return 2147483647 + 1; }"
        assert run(src) == -(1 << 31)

    def test_float_math(self):
        assert run("double main(void) { return 1.5 * 4.0; }") == 6.0

    def test_int_to_float_promotion(self):
        assert run("double main(void) { return 3 / 2 + 0.25; }") == 1.25

    def test_logical_short_circuit(self):
        src = """
        int g;
        int touch(void) { g = 1; return 1; }
        int main(void) { int r; g = 0; r = 0 && touch(); return r + g; }
        """
        assert run(src) == 0

    def test_ternary_and_comma(self):
        assert run("int main(void) { return (1, 2, 3) ? 7 : 8; }") == 7

    def test_char_semantics(self):
        assert run("int main(void) { char c; c = 300; return c; }") == 44

    def test_unsigned_compare(self):
        src = "int main(void) { unsigned a; a = -1; return a > 100u; }"
        assert run(src) == 1

    def test_incdec(self):
        src = """
        int main(void) {
            int x, a, b;
            x = 5;
            a = x++;
            b = ++x;
            return a * 100 + b * 10 + x;
        }
        """
        assert run(src) == 5 * 100 + 7 * 10 + 7

    def test_sizeof(self):
        src = "int main(void) { return sizeof(int) + sizeof(double) + sizeof(char *); }"
        assert run(src) == 4 + 8 + 4


class TestPointersAndArrays:
    def test_local_array(self):
        src = """
        int main(void) {
            int a[5];
            int i, s;
            for (i = 0; i < 5; i++) a[i] = i * i;
            s = 0;
            for (i = 0; i < 5; i++) s = s + a[i];
            return s;
        }
        """
        assert run(src) == 30

    def test_pointer_into_array(self):
        src = """
        int main(void) {
            int a[3] = {10, 20, 30};
            int *p;
            p = a + 1;
            return *p + p[1];
        }
        """
        assert run(src) == 50

    def test_address_of_local(self):
        src = """
        int main(void) {
            int x;
            int *p;
            x = 1;
            p = &x;
            *p = 42;
            return x;
        }
        """
        assert run(src) == 42

    def test_global_state(self):
        src = """
        int counter;
        void bump(void) { counter = counter + 1; }
        int main(void) { bump(); bump(); bump(); return counter; }
        """
        assert run(src) == 3

    def test_string_access(self):
        src = 'int main(void) { char *s; s = "AB"; return s[0] * 1000 + s[1]; }'
        assert run(src) == 65 * 1000 + 66

    def test_malloc_builtin(self):
        src = """
        int main(void) {
            int *p;
            p = (int *)malloc(8);
            p[0] = 40;
            p[1] = 2;
            return p[0] + p[1];
        }
        """
        assert run(src) == 42


class TestFunctions:
    def test_recursion(self):
        src = "int fact(int n) { return n < 2 ? 1 : n * fact(n - 1); }"
        assert run(src, "fact", 6) == 720

    def test_interpreted_calls_compiled(self):
        # spec-time code calling a statically compiled function by name
        src = """
        int square(int x) { return x * x; }
        int main(void) {
            int (*fp)(int);
            fp = square;
            return fp(6);
        }
        """
        assert run(src) == 36

    def test_call_undefined_extern(self):
        src = "int g(int); int main(void) { return g(1); }"
        with pytest.raises(RuntimeTccError, match="undefined"):
            run(src, compile_static=False)

    def test_float_args_and_return(self):
        src = """
        double mix(double a, int b) { return a + b; }
        double main(void) { return mix(0.5, 2); }
        """
        assert run(src) == 2.5


class TestOutput:
    def test_printf_basics(self):
        src = r"""
        void main(void) { printf("x=%d, s=%s, c=%c\n", 42, "hi", 33); }
        """
        proc = compile_c(src)
        proc.run("main")
        assert proc.machine.drain_output() == "x=42, s=hi, c=!\n"

    def test_printf_percent_escape(self):
        src = r'void main(void) { printf("100%%"); }'
        proc = compile_c(src)
        proc.run("main")
        assert proc.machine.drain_output() == "100%"

    def test_printf_float(self):
        src = r'void main(void) { printf("%g", 2.5); }'
        proc = compile_c(src)
        proc.run("main")
        assert proc.machine.drain_output() == "2.5"

    def test_printf_missing_args(self):
        src = r'void main(void) { printf("%d %d", 1); }'
        proc = compile_c(src)
        with pytest.raises(RuntimeTccError, match="arguments"):
            proc.run("main")

    def test_print_int_builtin(self):
        src = "void main(void) { print_int(7); }"
        proc = compile_c(src)
        proc.run("main")
        assert proc.machine.drain_output() == "7"

    def test_hello_world(self):
        # the paper's first example
        src = r"""
        void main(void) {
            void cspec hello = `{ print_str("hello world\n"); };
            ((void (*)(void))compile(hello, void))();
        }
        """
        proc = compile_c(src)
        proc.run("main")
        assert proc.machine.drain_output() == "hello world\n"


class TestSpecRuntime:
    def test_param_reset_between_compiles(self):
        src = """
        int build_two(void) {
            int vspec a = param(int, 0);
            int f1;
            f1 = (int)compile(`(a + 1), int);
            return f1;
        }
        int build_zero(void) {
            return (int)compile(`99, int);
        }
        """
        proc = compile_c(src)
        f1 = proc.run("build_two")
        f2 = proc.run("build_zero")
        assert proc.function(f1, "i", "i")(1) == 2
        assert proc.function(f2, "", "i")() == 99

    def test_vspec_value_passing(self):
        src = """
        int vspec make(void) { return local(int); }
        int build(void) {
            int vspec v = make();
            return (int)compile(`{ v = 13; return v * 2; }, int);
        }
        """
        proc = compile_c(src)
        fn = proc.function(proc.run("build"), "", "i")
        assert fn() == 26

    def test_cspec_in_global(self):
        src = """
        int cspec saved;
        void make(int x) { saved = `($x * 2); }
        int build(void) {
            make(21);
            return (int)compile(saved, int);
        }
        """
        proc = compile_c(src)
        fn = proc.function(proc.run("build"), "", "i")
        assert fn() == 42

    def test_spec_value_cannot_enter_target_code(self):
        # a cspec smuggled through a varargs-typed compiled function pointer
        # is caught at the host/target boundary
        src = """
        int build(void) {
            int vspec p = param(int, 0);
            return (int)compile(`(p + 1), int);
        }
        int main(void) {
            int (*fp)();
            int cspec c = `1;
            fp = (int (*)())build();
            return fp(c);
        }
        """
        with pytest.raises(RuntimeTccError, match="specification"):
            run(src)

    def test_cast_of_cspec_to_int_rejected_statically(self):
        from repro.errors import TypeError_

        src = "int main(void) { int cspec c = `1; return (int)c + 0; }"
        with pytest.raises(TypeError_, match="cast"):
            run(src)
