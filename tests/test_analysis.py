"""Tests for the link-time used-opcode analysis and Table 1 workloads."""

import pytest

from repro import TccCompiler
from repro.analysis import collect_used_ops, emitter_size_estimate
from repro.analysis.usedops import FULL_ISA_SIZE, TRANSLATOR_CASE_SIZE
from repro.apps import ALL_APPS
from repro.apps.table1 import TABLE1_ROWS, run_row, table1
from repro.target.isa import Op


@pytest.fixture(scope="module")
def tcc():
    return TccCompiler()


class TestUsedOps:
    def test_tiny_program_uses_few_opcodes(self, tcc):
        prog = tcc.compile(
            "int build(void) { return (int)compile(`(1 + 2), int); }"
        )
        report = collect_used_ops(prog)
        assert report.used_count < FULL_ISA_SIZE / 3

    def test_pruning_factor_reported(self, tcc):
        prog = tcc.compile(
            "int build(void) { return (int)compile(`(1 + 2), int); }"
        )
        report = collect_used_ops(prog)
        est = emitter_size_estimate(report)
        assert est["full"] == FULL_ISA_SIZE * TRANSLATOR_CASE_SIZE
        assert est["pruned"] == report.used_count * TRANSLATOR_CASE_SIZE
        assert est["reduction_factor"] > 1.0

    def test_float_ops_detected(self, tcc):
        prog = tcc.compile(
            "int build(void) { double vspec x = param(double, 0);"
            " return (int)compile(`(x * 2.0), double); }"
        )
        report = collect_used_ops(prog)
        assert Op.FMUL in report.used_ops

    def test_division_pulls_in_strength_reduction_ops(self, tcc):
        prog = tcc.compile(
            "int build(int d) { int vspec x = param(int, 0);"
            " return (int)compile(`(x / $d), int); }"
        )
        report = collect_used_ops(prog)
        assert Op.DIVI in report.used_ops
        assert Op.SRAI in report.used_ops  # the pow2 fast path

    def test_apps_reduction_order_of_magnitude(self, tcc):
        # paper: "cuts the size of the ICODE library by up to an order of
        # magnitude for most programs"
        factors = []
        for app in ALL_APPS.values():
            report = collect_used_ops(tcc.compile(app.source))
            factors.append(report.reduction_factor)
        assert max(factors) >= 4.0
        assert all(f > 1.5 for f in factors)

    def test_program_with_no_ticks_has_baseline_only(self, tcc):
        prog = tcc.compile("int f(int x) { return x; }")
        report = collect_used_ops(prog)
        est = emitter_size_estimate(report)
        assert est["reduction_factor"] > 5.0


class TestTable1:
    @pytest.fixture(scope="class")
    def table(self):
        return table1()

    def test_all_rows_present(self, table):
        assert set(table) == set(TABLE1_ROWS)

    def test_vcode_band(self, table):
        # paper: 96.8 - 260.1 cycles per generated instruction
        for row, values in table.items():
            assert 80 < values["vcode"] < 500, (row, values)

    def test_icode_band(self, table):
        # paper: 1019.7 - 1261.9 cycles per generated instruction
        for row, values in table.items():
            assert 800 < values["icode"] < 2500, (row, values)

    def test_icode_order_of_magnitude_slower(self, table):
        # "Predictably, ICODE is approximately an order of magnitude
        # slower than VCODE"
        for row, values in table.items():
            ratio = values["icode"] / values["vcode"]
            assert 3.0 < ratio < 20.0, (row, ratio)

    def test_large_cspec_workload_size(self):
        source = TABLE1_ROWS["one large cspec, free variables"]()
        stats, fn, _ = run_row(source, "vcode")
        # the paper's large cspec is ~1000 instructions
        assert 600 < stats.generated_instructions < 2200

    def test_workloads_compute_consistently(self):
        for name, factory in TABLE1_ROWS.items():
            src = factory()
            _, f_v, _ = run_row(src, "vcode")
            _, f_i, _ = run_row(src, "icode")
            assert f_v(5) == f_i(5), name

    def test_free_variable_closures_are_bigger(self):
        fv = TABLE1_ROWS["one large cspec, free variables"]()
        dl = TABLE1_ROWS["one large cspec, dynamic locals"]()
        from repro.runtime.costmodel import Phase

        stats_fv, _, _ = run_row(fv, "vcode")
        stats_dl, _, _ = run_row(dl, "vcode")
        assert stats_fv.events[(Phase.CLOSURE, "capture")] > \
            stats_dl.events[(Phase.CLOSURE, "capture")]
