"""Tests for the link-time used-opcode analysis and Table 1 workloads."""

import pytest

from repro import TccCompiler
from repro.analysis import collect_used_ops, emitter_size_estimate
from repro.analysis.usedops import (
    FULL_ISA_SIZE,
    FUSED_CASE_SIZE,
    TRANSLATOR_CASE_SIZE,
    fusable_kinds,
)
from repro.apps import ALL_APPS
from repro.apps.table1 import TABLE1_ROWS, run_row, table1
from repro.target.isa import Op


@pytest.fixture(scope="module")
def tcc():
    return TccCompiler()


class TestUsedOps:
    def test_tiny_program_uses_few_opcodes(self, tcc):
        prog = tcc.compile(
            "int build(void) { return (int)compile(`(1 + 2), int); }"
        )
        report = collect_used_ops(prog)
        assert report.used_count < FULL_ISA_SIZE / 3

    def test_pruning_factor_reported(self, tcc):
        from repro.target.dispatch import FUSION_PAIRS

        prog = tcc.compile(
            "int build(void) { return (int)compile(`(1 + 2), int); }"
        )
        report = collect_used_ops(prog)
        est = emitter_size_estimate(report)
        assert est["full"] == (FULL_ISA_SIZE * TRANSLATOR_CASE_SIZE
                               + len(FUSION_PAIRS) * FUSED_CASE_SIZE)
        assert est["pruned"] == (
            report.used_count * TRANSLATOR_CASE_SIZE
            + len(report.fusion_kinds) * FUSED_CASE_SIZE
        )
        assert est["reduction_factor"] > 1.0

    def test_float_ops_detected(self, tcc):
        prog = tcc.compile(
            "int build(void) { double vspec x = param(double, 0);"
            " return (int)compile(`(x * 2.0), double); }"
        )
        report = collect_used_ops(prog)
        assert Op.FMUL in report.used_ops

    def test_division_pulls_in_strength_reduction_ops(self, tcc):
        prog = tcc.compile(
            "int build(int d) { int vspec x = param(int, 0);"
            " return (int)compile(`(x / $d), int); }"
        )
        report = collect_used_ops(prog)
        assert Op.DIVI in report.used_ops
        assert Op.SRAI in report.used_ops  # the pow2 fast path

    def test_apps_reduction_order_of_magnitude(self, tcc):
        # paper: "cuts the size of the ICODE library by up to an order of
        # magnitude for most programs"
        factors = []
        for app in ALL_APPS.values():
            report = collect_used_ops(tcc.compile(app.source))
            factors.append(report.reduction_factor)
        assert max(factors) >= 4.0
        assert all(f > 1.5 for f in factors)

    def test_program_with_no_ticks_has_baseline_only(self, tcc):
        prog = tcc.compile("int f(int x) { return x; }")
        report = collect_used_ops(prog)
        est = emitter_size_estimate(report)
        assert est["reduction_factor"] > 5.0

    def test_fusion_pairs_counted(self, tcc):
        # Regression: the scan historically ignored the block engine's
        # superinstruction fusion, under-counting the pruned translator
        # for every program whose opcode set can fuse.  A comparison in
        # a loop condition pulls in compare + branch ops: cmp_branch
        # must be charged; the baseline ops alone already enable
        # addr_mem (ADDI + LW/SW) and li_op (LI + ADDI).
        prog = tcc.compile(
            "int build(int n) { int vspec x = param(int, 0);"
            " return (int)compile(`(x < $n ? x + 1 : 0), int); }"
        )
        report = collect_used_ops(prog)
        assert "cmp_branch" in report.fusion_kinds
        assert "addr_mem" in report.fusion_kinds
        assert "li_op" in report.fusion_kinds
        est = emitter_size_estimate(report)
        assert est["fusion_kinds"] == list(report.fusion_kinds)
        # each enabled kind adds exactly one fused case to the
        # pruned size
        assert (est["pruned"] - report.used_count * TRANSLATOR_CASE_SIZE
                ) == len(report.fusion_kinds) * FUSED_CASE_SIZE

    def test_fusable_kinds_need_both_halves(self):
        # A kind needs both halves of its pair present: LI alone cannot
        # fuse (li_op wants an ALU consumer), and a compare without a
        # conditional branch cannot form cmp_branch.
        assert fusable_kinds({Op.LI}) == ()
        assert fusable_kinds({Op.LI, Op.ADD}) == ("li_op",)
        assert fusable_kinds({Op.SLT}) == ()
        assert fusable_kinds({Op.SLT, Op.BNEZ}) == ("cmp_branch",)
        # ADDI feeding LW enables addr_mem; LW feeding ADDI (an ADD imm
        # form) enables load_op — but never li_op without LI.
        assert fusable_kinds({Op.ADDI, Op.LW}) == ("addr_mem", "load_op")


class TestTable1:
    @pytest.fixture(scope="class")
    def table(self):
        return table1()

    def test_all_rows_present(self, table):
        assert set(table) == set(TABLE1_ROWS)

    def test_vcode_band(self, table):
        # paper: 96.8 - 260.1 cycles per generated instruction
        for row, values in table.items():
            assert 80 < values["vcode"] < 500, (row, values)

    def test_icode_band(self, table):
        # paper: 1019.7 - 1261.9 cycles per generated instruction
        for row, values in table.items():
            assert 800 < values["icode"] < 2500, (row, values)

    def test_icode_order_of_magnitude_slower(self, table):
        # "Predictably, ICODE is approximately an order of magnitude
        # slower than VCODE"
        for row, values in table.items():
            ratio = values["icode"] / values["vcode"]
            assert 3.0 < ratio < 20.0, (row, ratio)

    def test_large_cspec_workload_size(self):
        source = TABLE1_ROWS["one large cspec, free variables"]()
        stats, fn, _ = run_row(source, "vcode")
        # the paper's large cspec is ~1000 instructions
        assert 600 < stats.generated_instructions < 2200

    def test_workloads_compute_consistently(self):
        for name, factory in TABLE1_ROWS.items():
            src = factory()
            _, f_v, _ = run_row(src, "vcode")
            _, f_i, _ = run_row(src, "icode")
            assert f_v(5) == f_i(5), name

    def test_free_variable_closures_are_bigger(self):
        fv = TABLE1_ROWS["one large cspec, free variables"]()
        dl = TABLE1_ROWS["one large cspec, dynamic locals"]()
        from repro.runtime.costmodel import Phase

        stats_fv, _, _ = run_row(fv, "vcode")
        stats_dl, _, _ = run_row(dl, "vcode")
        assert stats_fv.events[(Phase.CLOSURE, "capture")] > \
            stats_dl.events[(Phase.CLOSURE, "capture")]
