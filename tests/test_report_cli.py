"""Coverage for the ``python -m repro.report`` CLI: every subcommand,
``all``, and the bad-argument exit path.

The expensive measurement machinery is monkeypatched with canned
:class:`MeasureResult` objects so the whole matrix runs in milliseconds;
the real figures are exercised by benchmarks/.
"""

import pytest

from repro import report
from repro.apps.base import MeasureResult
from repro.telemetry.trace import Tracer


def _fake_result(app_name="hash", backend="icode", static_opt="lcc"):
    r = MeasureResult(app_name, backend, "linear", static_opt)
    r.dynamic_cycles = 1_000
    r.static_cycles = 3_000
    r.codegen_cycles = 20_000
    r.generated_instructions = 40
    r.cycles_per_instruction = 500.0
    r.phase_breakdown = {"closure": 20.0, "emit": 400.0, "link": 5.0,
                         "ir": 60.0, "flowgraph": 10.0, "liveness": 30.0,
                         "intervals": 15.0, "regalloc": 200.0,
                         "translate": 80.0}
    r.dynamic_result = r.static_result = r.expected = 7
    r.correct = True
    tracer = Tracer("on")
    with tracer.span("run:fake", cat="spec"):
        tracer.advance(100)
    r.tracer = tracer
    r.hot_profile = [
        {"pc": 7, "kind": "trace", "dispatches": 90, "blocks": 4,
         "instructions": 17, "cycles": 5_400},
        {"pc": 3, "kind": "block", "dispatches": 12, "blocks": 1,
         "instructions": 5, "cycles": 96},
    ]
    return r


class _FakeUsedOps:
    used_count = 12
    full_size = 4_000
    pruned_size = 400
    reduction_factor = 10.0


@pytest.fixture
def cheap_reports(monkeypatch):
    monkeypatch.setattr(
        "repro.apps.harness.measure",
        lambda app, **kw: _fake_result(app.name, kw.get("backend", "icode"),
                                       kw.get("static_opt", "lcc")))
    monkeypatch.setattr(
        report, "_series_results",
        lambda names: {
            name: {f"{b}-{s}": _fake_result(name, b, s)
                   for b, s in report.SERIES}
            for name in names
        })
    monkeypatch.setattr(
        "repro.apps.table1.table1",
        lambda: {"one small workload": {"vcode": 150.0, "icode": 1_100.0}})
    monkeypatch.setattr(
        "repro.analysis.collect_used_ops", lambda prog: _FakeUsedOps())

    class _FakeTcc:
        def compile(self, source, filename="<source>"):
            return None

    monkeypatch.setattr("repro.core.driver.TccCompiler", _FakeTcc)


@pytest.mark.usefixtures("cheap_reports")
class TestEverySubcommand:
    @pytest.mark.parametrize("name, marker", [
        ("table1", "cycles per generated instruction"),
        ("fig4", "run-time ratio"),
        ("fig5", "cross-over point"),
        ("fig6", "VCODE dynamic compilation cost breakdown"),
        ("fig7", "linear scan (LS) vs graph"),
        ("blur", "xv Blur case study"),
        ("usedops", "ICODE-emitter pruning"),
        ("telemetry", "Telemetry summary"),
        ("hot", "Hottest execution units"),
        ("cache", "Code cache"),
    ])
    def test_subcommand_exits_zero_and_renders(self, capsys, name, marker):
        assert report.main([name]) == 0
        assert marker in capsys.readouterr().out

    def test_all_concatenates_every_report(self, capsys):
        assert report.main(["all"]) == 0
        out = capsys.readouterr().out
        for marker in ("Table 1", "Figure 4", "Figure 5", "Figure 6",
                       "Figure 7", "Blur", "pruning", "Telemetry",
                       "Hottest", "Code cache"):
            assert marker in out

    def test_fig5_renders_dash_when_never_amortized(self, capsys):
        results = {"hash": {f"{b}-{s}": _fake_result("hash", b, s)
                            for b, s in report.SERIES}}
        for row in results["hash"].values():
            row.static_cycles = row.dynamic_cycles  # gain <= 0
        text = report.report_fig5(results)
        assert "-" in text.splitlines()[-1]


class TestBadArguments:
    @pytest.mark.parametrize("argv", [[], ["nonsense"], ["fig99"]])
    def test_unknown_subcommand_prints_usage_and_fails(self, capsys, argv):
        assert report.main(argv) == 1
        assert "python -m repro.report" in capsys.readouterr().out

    def test_registry_of_reports_matches_cli(self):
        assert set(report.REPORTS) == {
            "table1", "fig4", "fig5", "fig6", "fig7", "blur", "usedops",
            "telemetry", "hot", "cache", "analysis", "slo",
        }


class TestCacheReport:
    SOURCE = """
    int make_adder(int n) {
        int vspec p = param(int, 0);
        int cspec c = `($n + p);
        return (int)compile(c, int);
    }
    """

    def test_cache_report_reflects_live_counters(self, capsys):
        from repro.core.driver import TccCompiler

        report.reset()
        proc = TccCompiler().compile(self.SOURCE).start()
        proc.run("make_adder", 10)
        proc.run("make_adder", 10)   # Tier-1 memo hit
        proc.run("make_adder", 20)   # Tier-2 clone+patch
        assert report.main(["cache"]) == 0
        out = capsys.readouterr().out
        assert "Code cache" in out
        assert "1 memo hits" in out
        assert "1 template clones" in out

    def test_cache_report_scans_configured_dir(self, tmp_path, monkeypatch,
                                               capsys):
        from repro.core.driver import TccCompiler

        monkeypatch.setenv("REPRO_CODECACHE_DIR", str(tmp_path))
        proc = TccCompiler().compile(self.SOURCE).start()
        proc.run("make_adder", 10)
        proc.codecache.flush()
        assert report.main(["cache"]) == 0
        out = capsys.readouterr().out
        assert f"disk dir {tmp_path}: 1 entries" in out


class TestHotReport:
    def test_hot_report_ranks_traces(self, cheap_reports, capsys):
        assert report.main(["hot"]) == 0
        out = capsys.readouterr().out
        assert "trace" in out and "block" in out
        # The trace row (more dispatches) must be ranked first.
        lines = [ln for ln in out.splitlines() if " trace " in ln
                 or " block " in ln]
        assert "trace" in lines[0]

    def test_hot_report_handles_empty_profile(self, cheap_reports,
                                              monkeypatch, capsys):
        empty = _fake_result()
        empty.hot_profile = None
        monkeypatch.setattr("repro.apps.harness.measure",
                            lambda app, **kw: empty)
        assert report.main(["hot"]) == 0
        assert "no units dispatched" in capsys.readouterr().out
