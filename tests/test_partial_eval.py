"""Unit tests for run-time constant strength reduction (tcc 4.4)."""

from repro.core.partial_eval import (
    _is_power_of_two,
    _shift_add_plan,
    emit_div_imm,
    emit_mod_imm,
    emit_mul_imm,
)
from repro.runtime.costmodel import CostModel
from repro.target.cpu import Machine
from repro.target.isa import CYCLE_COST, Op, wrap32
from repro.vcode.machine import VcodeBackend


def emit_and_run(emit, x):
    machine = Machine()
    backend = VcodeBackend(machine, CostModel())
    src = backend.alloc_reg("i")
    dst = backend.alloc_reg("i")
    backend.li(src, x)
    emit(backend, dst, src)
    backend.ret(dst, "i")
    entry = backend.install()
    value = machine.call(entry)
    ops = [i.op for i in machine.code.instructions[entry:]]
    return value, ops


class TestHelpers:
    def test_power_of_two(self):
        assert _is_power_of_two(1)
        assert _is_power_of_two(64)
        assert not _is_power_of_two(0)
        assert not _is_power_of_two(12)
        assert not _is_power_of_two(-4)

    def test_shift_add_plan_sparse_constant(self):
        assert _shift_add_plan(12) == [2, 3]  # 4 + 8

    def test_shift_add_plan_dense_constant_declined(self):
        # 0x9E3779B9 has too many set bits: keep the multiply
        assert _shift_add_plan(0x3779B9) is None

    def test_plan_cost_threshold_tracks_mul_cost(self):
        # any accepted plan must beat the multiply's cycle cost
        plan = _shift_add_plan(36)  # 4 + 32: shift,shift,add = 3 ops
        assert plan is not None
        assert len(plan) <= CYCLE_COST[Op.MUL]


class TestMul:
    def test_mul_by_zero_is_li(self):
        value, ops = emit_and_run(lambda b, d, s: emit_mul_imm(b, d, s, 0), 99)
        assert value == 0
        assert Op.MUL not in ops and Op.MULI not in ops

    def test_mul_by_one_is_move(self):
        value, ops = emit_and_run(lambda b, d, s: emit_mul_imm(b, d, s, 1), 7)
        assert value == 7
        assert Op.MULI not in ops

    def test_mul_by_minus_one_negates(self):
        value, ops = emit_and_run(lambda b, d, s: emit_mul_imm(b, d, s, -1), 7)
        assert value == -7
        assert Op.NEG in ops

    def test_mul_by_power_of_two_is_shift(self):
        value, ops = emit_and_run(lambda b, d, s: emit_mul_imm(b, d, s, 16), 5)
        assert value == 80
        assert Op.SLLI in ops and Op.MULI not in ops

    def test_mul_by_negative_power_of_two(self):
        value, ops = emit_and_run(lambda b, d, s: emit_mul_imm(b, d, s, -8), 5)
        assert value == -40
        assert Op.MULI not in ops

    def test_mul_sparse_constant_shift_add(self):
        value, ops = emit_and_run(lambda b, d, s: emit_mul_imm(b, d, s, 10), 7)
        assert value == 70
        assert Op.MULI not in ops
        assert Op.SLLI in ops and Op.ADD in ops

    def test_mul_dense_constant_keeps_multiply(self):
        k = 0x12345678 | 0x0F0F0F0F
        value, ops = emit_and_run(lambda b, d, s: emit_mul_imm(b, d, s, k), 3)
        assert value == wrap32(3 * k)
        assert Op.MULI in ops

    def test_mul_aliased_dst_src(self):
        machine = Machine()
        backend = VcodeBackend(machine, CostModel())
        r = backend.alloc_reg("i")
        backend.li(r, 9)
        emit_mul_imm(backend, r, r, 10)  # dst aliases src
        backend.ret(r, "i")
        entry = backend.install()
        assert machine.call(entry) == 90


class TestDivMod:
    def test_div_by_one(self):
        value, ops = emit_and_run(
            lambda b, d, s: emit_div_imm(b, d, s, 1), 41
        )
        assert value == 41
        assert Op.DIVI not in ops

    def test_unsigned_div_pow2_is_shift(self):
        value, ops = emit_and_run(
            lambda b, d, s: emit_div_imm(b, d, s, 8, signed=False), 100
        )
        assert value == 12
        assert Op.SRLI in ops and Op.DIVUI not in ops

    def test_signed_div_pow2_rounds_toward_zero(self):
        value, ops = emit_and_run(
            lambda b, d, s: emit_div_imm(b, d, s, 4, signed=True), -7
        )
        assert value == -1  # C: -7/4 == -1, not -2
        assert Op.DIVI not in ops

    def test_signed_div_non_pow2_keeps_divide(self):
        value, ops = emit_and_run(
            lambda b, d, s: emit_div_imm(b, d, s, 3, signed=True), 10
        )
        assert value == 3
        assert Op.DIVI in ops

    def test_unsigned_mod_pow2_is_mask(self):
        value, ops = emit_and_run(
            lambda b, d, s: emit_mod_imm(b, d, s, 16, signed=False), 100
        )
        assert value == 4
        assert Op.ANDI in ops and Op.MODUI not in ops

    def test_signed_mod_keeps_modulo(self):
        value, ops = emit_and_run(
            lambda b, d, s: emit_mod_imm(b, d, s, 16, signed=True), -100
        )
        assert value == -4
        assert Op.MODI in ops
