"""Target machine tests: memory, ISA semantics, CPU execution, linking."""

import pytest

from repro.errors import LinkError, MachineError
from repro.target.cpu import Function, Machine
from repro.target.isa import (
    CYCLE_COST,
    Instruction,
    Op,
    Reg,
    unsigned32,
    wrap32,
)
from repro.target.memory import Memory
from repro.target.program import Label


class TestWrap32:
    def test_positive_in_range(self):
        assert wrap32(123) == 123

    def test_overflow_wraps_negative(self):
        assert wrap32(0x80000000) == -(1 << 31)

    def test_negative_wraps(self):
        assert wrap32(-(1 << 31) - 1) == (1 << 31) - 1

    def test_unsigned_view(self):
        assert unsigned32(-1) == 0xFFFFFFFF


class TestMemory:
    def test_word_roundtrip(self):
        m = Memory()
        a = m.alloc(8)
        m.store_word(a, -12345)
        assert m.load_word(a) == -12345

    def test_word_wraps_to_32_bits(self):
        m = Memory()
        a = m.alloc(4)
        m.store_word(a, 0x1_0000_0005)
        assert m.load_word(a) == 5

    def test_byte_signed_and_unsigned(self):
        m = Memory()
        a = m.alloc(1)
        m.store_byte(a, 0xFF)
        assert m.load_byte(a) == -1
        assert m.load_byte_unsigned(a) == 255

    def test_double_roundtrip(self):
        m = Memory()
        a = m.alloc(8)
        m.store_double(a, 3.5e-3)
        assert m.load_double(a) == 3.5e-3

    def test_null_page_traps(self):
        m = Memory()
        with pytest.raises(MachineError):
            m.load_word(0)

    def test_out_of_bounds_traps(self):
        m = Memory()
        with pytest.raises(MachineError):
            m.load_word(m.size)

    def test_alloc_alignment(self):
        m = Memory()
        m.alloc(1, align=1)
        a = m.alloc(8, align=8)
        assert a % 8 == 0

    def test_alloc_exhaustion(self):
        m = Memory(size=1 << 17, stack_size=1 << 16)
        with pytest.raises(MachineError):
            m.alloc(1 << 20)

    def test_mark_release(self):
        m = Memory()
        m.mark()
        a = m.alloc(64)
        m.release()
        b = m.alloc(64)
        assert a == b

    def test_release_without_mark(self):
        with pytest.raises(MachineError):
            Memory().release()

    def test_alloc_words_and_read(self):
        m = Memory()
        a = m.alloc_words([1, -2, 3])
        assert m.read_words(a, 3) == [1, -2, 3]

    def test_cstring_roundtrip(self):
        m = Memory()
        a = m.alloc_cstring("héllo")
        assert m.read_cstring(a) == "héllo"

    def test_bytes_roundtrip(self):
        m = Memory()
        a = m.alloc_bytes(b"\x00\x01\xfe")
        assert m.read_bytes(a, 3) == b"\x00\x01\xfe"


def run_program(instrs, args=(), fuel=100_000):
    """Assemble, run with the standard convention, return (machine, rv)."""
    machine = Machine(fuel=fuel)
    entry = machine.code.extend(instrs)
    machine.code.link()
    rv = machine.call(entry, args)
    return machine, rv


class TestCPUBasics:
    def test_li_and_return(self):
        _, rv = run_program([
            Instruction(Op.LI, Reg.RV, 42),
            Instruction(Op.RET),
        ])
        assert rv == 42

    def test_zero_register_is_immutable(self):
        _, rv = run_program([
            Instruction(Op.LI, Reg.ZERO, 99),
            Instruction(Op.MOV, Reg.RV, Reg.ZERO),
            Instruction(Op.RET),
        ])
        assert rv == 0

    def test_arithmetic(self):
        _, rv = run_program([
            Instruction(Op.LI, Reg.T0, 7),
            Instruction(Op.LI, Reg.T1, 5),
            Instruction(Op.SUB, Reg.RV, Reg.T0, Reg.T1),
            Instruction(Op.RET),
        ])
        assert rv == 2

    def test_argument_passing(self):
        _, rv = run_program([
            Instruction(Op.ADD, Reg.RV, Reg.A0, Reg.A1),
            Instruction(Op.RET),
        ], args=(30, 12))
        assert rv == 42

    def test_mul_wraps(self):
        _, rv = run_program([
            Instruction(Op.LI, Reg.T0, 0x10000),
            Instruction(Op.MUL, Reg.RV, Reg.T0, Reg.T0),
            Instruction(Op.RET),
        ])
        assert rv == 0

    def test_signed_division_truncates(self):
        _, rv = run_program([
            Instruction(Op.LI, Reg.T0, -7),
            Instruction(Op.DIVI, Reg.RV, Reg.T0, 2),
            Instruction(Op.RET),
        ])
        assert rv == -3

    def test_signed_modulo_sign(self):
        _, rv = run_program([
            Instruction(Op.LI, Reg.T0, -7),
            Instruction(Op.MODI, Reg.RV, Reg.T0, 2),
            Instruction(Op.RET),
        ])
        assert rv == -1

    def test_division_by_zero_traps(self):
        with pytest.raises(MachineError, match="zero"):
            run_program([
                Instruction(Op.LI, Reg.T0, 1),
                Instruction(Op.DIV, Reg.RV, Reg.T0, Reg.ZERO),
                Instruction(Op.RET),
            ])

    def test_unsigned_division(self):
        _, rv = run_program([
            Instruction(Op.LI, Reg.T0, -1),  # 0xFFFFFFFF
            Instruction(Op.DIVUI, Reg.RV, Reg.T0, 2),
            Instruction(Op.RET),
        ])
        assert rv == 0x7FFFFFFF

    def test_shifts(self):
        _, rv = run_program([
            Instruction(Op.LI, Reg.T0, -8),
            Instruction(Op.SRAI, Reg.RV, Reg.T0, 1),
            Instruction(Op.RET),
        ])
        assert rv == -4
        _, rv = run_program([
            Instruction(Op.LI, Reg.T0, -8),
            Instruction(Op.SRLI, Reg.RV, Reg.T0, 1),
            Instruction(Op.RET),
        ])
        assert rv == 0x7FFFFFFC

    def test_compare_and_set(self):
        _, rv = run_program([
            Instruction(Op.LI, Reg.T0, 3),
            Instruction(Op.SLTI, Reg.RV, Reg.T0, 5),
            Instruction(Op.RET),
        ])
        assert rv == 1

    def test_sltu_unsigned_compare(self):
        _, rv = run_program([
            Instruction(Op.LI, Reg.T0, -1),
            Instruction(Op.LI, Reg.T1, 1),
            Instruction(Op.SLTU, Reg.RV, Reg.T0, Reg.T1),
            Instruction(Op.RET),
        ])
        assert rv == 0  # 0xFFFFFFFF is not < 1 unsigned


class TestControlFlow:
    def test_branch_taken(self):
        end = Label()
        machine = Machine()
        entry = machine.code.here
        machine.code.extend([
            Instruction(Op.LI, Reg.RV, 1),
            Instruction(Op.BEQZ, Reg.ZERO, end),
            Instruction(Op.LI, Reg.RV, 2),
        ])
        end.address = machine.code.here
        machine.code.emit(Instruction(Op.RET))
        machine.code.link()
        assert machine.call(entry) == 1

    def test_loop_sums(self):
        # sum 1..10 with a BNEZ loop
        top = Label()
        machine = Machine()
        entry = machine.code.here
        machine.code.emit(Instruction(Op.LI, Reg.T0, 10))
        machine.code.emit(Instruction(Op.LI, Reg.RV, 0))
        top.address = machine.code.here
        machine.code.extend([
            Instruction(Op.ADD, Reg.RV, Reg.RV, Reg.T0),
            Instruction(Op.SUBI, Reg.T0, Reg.T0, 1),
            Instruction(Op.BNEZ, Reg.T0, top),
            Instruction(Op.RET),
        ])
        machine.code.link()
        assert machine.call(entry) == 55

    def test_call_and_ret(self):
        machine = Machine()
        callee = machine.code.extend([
            Instruction(Op.ADDI, Reg.RV, Reg.A0, 1),
            Instruction(Op.RET),
        ])
        entry = machine.code.extend([
            Instruction(Op.LI, Reg.A0, 41),
            Instruction(Op.MOV, Reg.T0, Reg.RA),
            Instruction(Op.CALL, callee),
            Instruction(Op.MOV, Reg.RA, Reg.T0),
            Instruction(Op.RET),
        ])
        machine.code.link()
        assert machine.call(entry) == 42

    def test_indirect_call(self):
        machine = Machine()
        callee = machine.code.extend([
            Instruction(Op.MULI, Reg.RV, Reg.A0, 2),
            Instruction(Op.RET),
        ])
        entry = machine.code.extend([
            Instruction(Op.LI, Reg.T1, callee),
            Instruction(Op.LI, Reg.A0, 21),
            Instruction(Op.MOV, Reg.T0, Reg.RA),
            Instruction(Op.CALLR, Reg.T1),
            Instruction(Op.MOV, Reg.RA, Reg.T0),
            Instruction(Op.RET),
        ])
        machine.code.link()
        assert machine.call(entry) == 42

    def test_runaway_fuel_guard(self):
        loop = Label()
        machine = Machine(fuel=1000)
        entry = machine.code.here
        loop.address = entry
        machine.code.emit(Instruction(Op.JMP, loop))
        machine.code.link()
        with pytest.raises(MachineError, match="budget"):
            machine.call(entry)

    def test_pc_out_of_range(self):
        machine = Machine()
        entry = machine.code.emit(Instruction(Op.JMP, 99999))
        machine.code.link()
        with pytest.raises(MachineError, match="range"):
            machine.call(entry)


class TestMemoryOps:
    def test_load_store_word(self):
        machine = Machine()
        addr = machine.memory.alloc_words([0])
        entry = machine.code.extend([
            Instruction(Op.LI, Reg.T0, 77),
            Instruction(Op.SW, Reg.T0, Reg.ZERO, addr),
            Instruction(Op.LW, Reg.RV, Reg.ZERO, addr),
            Instruction(Op.RET),
        ])
        machine.code.link()
        assert machine.call(entry) == 77

    def test_byte_ops(self):
        machine = Machine()
        addr = machine.memory.alloc(4)
        entry = machine.code.extend([
            Instruction(Op.LI, Reg.T0, 0x1FF),
            Instruction(Op.SB, Reg.T0, Reg.ZERO, addr),
            Instruction(Op.LBU, Reg.RV, Reg.ZERO, addr),
            Instruction(Op.RET),
        ])
        machine.code.link()
        assert machine.call(entry) == 0xFF

    def test_float_ops(self):
        machine = Machine()
        entry = machine.code.extend([
            Instruction(Op.FLI, 1, 1.5),
            Instruction(Op.FLI, 2, 2.25),
            Instruction(Op.FADD, 0, 1, 2),
            Instruction(Op.RET),
        ])
        machine.code.link()
        assert machine.call(entry, returns="f") == 3.75

    def test_cvt_roundtrip(self):
        machine = Machine()
        entry = machine.code.extend([
            Instruction(Op.LI, Reg.T0, -3),
            Instruction(Op.CVTIF, 1, Reg.T0),
            Instruction(Op.FMUL, 1, 1, 1),
            Instruction(Op.CVTFI, Reg.RV, 1),
            Instruction(Op.RET),
        ])
        machine.code.link()
        assert machine.call(entry) == 9


class TestCycles:
    def test_cycle_accounting_simple(self):
        machine, _ = run_program([
            Instruction(Op.LI, Reg.RV, 1),   # 1
            Instruction(Op.MULI, Reg.RV, Reg.RV, 3),  # 20
            Instruction(Op.RET),             # 2
        ])
        # +0 for the HALT sentinel
        assert machine.cpu.cycles == CYCLE_COST[Op.LI] + \
            CYCLE_COST[Op.MULI] + CYCLE_COST[Op.RET]

    def test_taken_branch_costs_extra(self):
        taken, _ = run_program([
            Instruction(Op.BEQZ, Reg.ZERO, 0),  # jumps to HALT at 0
        ])
        not_taken, _ = run_program([
            Instruction(Op.BEQZ, Reg.A0, 0),
            Instruction(Op.RET),
        ], args=(1,))
        assert taken.cpu.cycles == CYCLE_COST[Op.BEQZ] + 1
        assert not_taken.cpu.cycles == CYCLE_COST[Op.BEQZ] + CYCLE_COST[Op.RET]

    def test_mul_div_are_expensive(self):
        assert CYCLE_COST[Op.MUL] >= 15
        assert CYCLE_COST[Op.DIV] >= 30


class TestHostcallsAndFunctions:
    def test_print_int(self):
        machine = Machine()
        entry = machine.code.extend([
            Instruction(Op.LI, Reg.A0, 7),
            Instruction(Op.HOSTCALL, machine.host_function_index("print_int")),
            Instruction(Op.RET),
        ])
        machine.code.link()
        machine.call(entry)
        assert machine.drain_output() == "7"

    def test_function_wrapper_signature(self):
        machine = Machine()
        entry = machine.code.extend([
            Instruction(Op.ADD, Reg.RV, Reg.A0, Reg.A1),
            Instruction(Op.RET),
        ])
        machine.code.link()
        fn = Function(machine, entry, "ii", "i", "add")
        assert fn(4, 5) == 9
        with pytest.raises(MachineError, match="expects"):
            fn(1)

    def test_function_wrapper_float(self):
        machine = Machine()
        entry = machine.code.extend([
            Instruction(Op.FADD, 0, 1, 2),
            Instruction(Op.RET),
        ])
        machine.code.link()
        fn = Function(machine, entry, "ff", "f")
        assert fn(0.5, 0.25) == 0.75


class TestLinking:
    def test_unresolved_label(self):
        machine = Machine()
        machine.code.emit(Instruction(Op.JMP, Label("never")))
        with pytest.raises(LinkError, match="unresolved"):
            machine.code.link()

    def test_funcref_resolution(self):
        from repro.core.operands import FuncRef

        machine = Machine()
        machine.code.define("target", 5)
        machine.code.emit(Instruction(Op.CALL, FuncRef("target")))
        machine.code.link()
        assert machine.code.instructions[-1].a == 5

    def test_undefined_funcref(self):
        from repro.core.operands import FuncRef

        machine = Machine()
        machine.code.emit(Instruction(Op.CALL, FuncRef("ghost")))
        with pytest.raises(LinkError, match="ghost"):
            machine.code.link()

    def test_duplicate_symbol(self):
        machine = Machine()
        machine.code.define("x", 1)
        with pytest.raises(LinkError, match="twice"):
            machine.code.define("x", 2)

    def test_incremental_link(self):
        machine = Machine()
        l1 = Label()
        machine.code.emit(Instruction(Op.JMP, l1))
        l1.address = machine.code.here
        machine.code.emit(Instruction(Op.RET))
        machine.code.link()
        # a second batch links independently
        l2 = Label()
        machine.code.emit(Instruction(Op.JMP, l2))
        l2.address = machine.code.here
        machine.code.emit(Instruction(Op.RET))
        machine.code.link()
        assert all(
            not isinstance(i.a, Label) for i in machine.code.instructions
        )
