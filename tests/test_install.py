"""Function-installation tests: prologue/epilogue, frame layout, linking."""

from repro.core.install import (
    FREG_SAVE_BASE,
    SPILL_BASE,
    build_prologue_epilogue,
    frame_size,
    install_function,
    spill_offset,
)
from repro.runtime.costmodel import CostModel
from repro.target.cpu import Machine
from repro.target.isa import Instruction, Op, Reg
from repro.target.program import Label


class TestFrameLayout:
    def test_spill_offsets_fixed_and_disjoint(self):
        offsets = [spill_offset(i) for i in range(4)]
        assert offsets[0] == SPILL_BASE
        assert all(b - a == 8 for a, b in zip(offsets, offsets[1:]))
        assert SPILL_BASE >= FREG_SAVE_BASE + 10 * 8

    def test_frame_size_aligned(self):
        for n in range(6):
            assert frame_size(n) % 16 == 0
            assert frame_size(n) >= SPILL_BASE + 8 * n

    def test_prologue_saves_only_used_registers(self):
        prologue, epilogue, _, _ = build_prologue_epilogue(
            {Reg.S0, Reg.S3}, set(), has_call=False, n_spill_slots=0
        )
        stores = [i for i in prologue if i.op is Op.SW]
        assert len(stores) == 2
        loads = [i for i in epilogue if i.op is Op.LW]
        assert len(loads) == 2
        # no RA save without calls
        assert all(i.a != Reg.RA for i in stores)

    def test_prologue_saves_ra_when_calling(self):
        prologue, epilogue, _, _ = build_prologue_epilogue(
            set(), set(), has_call=True, n_spill_slots=0
        )
        assert any(i.op is Op.SW and i.a == Reg.RA for i in prologue)
        assert any(i.op is Op.LW and i.a == Reg.RA for i in epilogue)

    def test_float_registers_saved(self):
        from repro.target.isa import ALLOCATABLE_FREGS

        f = ALLOCATABLE_FREGS[0]
        prologue, _, _, _ = build_prologue_epilogue(
            set(), {f}, has_call=False, n_spill_slots=0
        )
        assert any(i.op is Op.FSW for i in prologue)

    def test_epilogue_ends_with_ret(self):
        _, epilogue, _, _ = build_prologue_epilogue(set(), set(), False, 0)
        assert epilogue[-1].op is Op.RET


class TestInstall:
    def test_labels_shifted_by_prologue(self):
        machine = Machine()
        cost = CostModel()
        target = Label()
        target.address = 1  # relative: points at the second body instr
        body = [
            Instruction(Op.JMP, target),
            Instruction(Op.LI, Reg.RV, 7),
        ]
        epilogue_label = Label("ep")
        entry = install_function(
            machine, cost, body, [target], epilogue_label,
            {Reg.S0}, set(), False, 0, name="t",
        )
        # the JMP operand was linked to an absolute address inside the body
        jmp = next(i for i in machine.code.instructions[entry:]
                   if i.op is Op.JMP)
        assert isinstance(jmp.a, int)
        assert machine.code.instructions[jmp.a].op is Op.LI
        assert machine.call(entry) == 7

    def test_symbol_registered(self):
        machine = Machine()
        epilogue_label = Label("ep")
        entry = install_function(
            machine, None, [Instruction(Op.LI, Reg.RV, 1)], [],
            epilogue_label, set(), set(), False, 0, name="one",
        )
        assert machine.code.lookup("one") == entry

    def test_deferred_link(self):
        from repro.core.operands import FuncRef

        machine = Machine()
        ep1, ep2 = Label("e1"), Label("e2")
        # f calls g, which is installed later: only possible with do_link=False
        f_entry = install_function(
            machine, None,
            [Instruction(Op.CALL, FuncRef("g")),
             Instruction(Op.ADDI, Reg.RV, Reg.RV, 1)],
            [], ep1, set(), set(), True, 0, name="f", do_link=False,
        )
        install_function(
            machine, None, [Instruction(Op.LI, Reg.RV, 41)],
            [], ep2, set(), set(), False, 0, name="g", do_link=False,
        )
        machine.code.link()
        assert machine.call(f_entry) == 42
