"""Unit tests for the profile-guided tiering layer.

The bit-identity differentials live in tests/test_engines.py (every
engine comparison there now includes "tiered"); this file covers the
tiering machinery itself: policy validation, trace formation over a
profile, promotion/deopt mechanics, the cross-session hotness rollup,
hot-unit reporting, and the driver's adaptive VCODE->ICODE retier.
"""

from __future__ import annotations

import pytest

from repro import Engine, report
from repro.target.cpu import Machine
from repro.target.isa import Instruction, Op, Reg
from repro.tiering import SharedHotness, TieredEngine, TieringPolicy, \
    form_trace
from tests.conftest import compile_c

HOT2 = {"hot_threshold": 2}


def _countdown(n):
    # pc 0 holds the top-level HALT; extend() places these at 1..4 with
    # the loop back edge targeting the SUBI at pc 2.
    return [
        Instruction(Op.LI, Reg.T0, n),
        Instruction(Op.SUBI, Reg.T0, Reg.T0, 1),
        Instruction(Op.BNEZ, Reg.T0, 2),
        Instruction(Op.RET),
    ]


def _hot_machine(n=30, tiering=None):
    machine = Machine(engine="tiered", tiering=tiering or HOT2)
    entry = machine.code.extend(_countdown(n))
    machine.code.link()
    return machine, entry


def _reference_cycles(n=30):
    ref = Machine(engine="reference")
    entry = ref.code.extend(_countdown(n))
    ref.code.link()
    ref.call(entry)
    return ref.cpu.cycles


class TestPolicy:
    def test_defaults(self):
        policy = TieringPolicy()
        assert policy.hot_threshold == 8
        assert policy.max_trace_instructions == 512
        assert policy.max_trace_blocks == 256
        assert policy.enabled

    def test_threshold_must_allow_an_observed_edge(self):
        # Promotion consumes the successor edge observed on the previous
        # dispatch; a threshold of 1 would promote before any edge exists.
        with pytest.raises(ValueError):
            TieringPolicy(hot_threshold=1)

    @pytest.mark.parametrize("field", ["max_trace_instructions",
                                       "max_trace_blocks"])
    def test_budgets_must_be_positive(self, field):
        with pytest.raises(ValueError):
            TieringPolicy(**{field: 0})

    def test_of_conversions(self):
        policy = TieringPolicy(hot_threshold=3)
        assert TieringPolicy.of(policy) is policy
        assert TieringPolicy.of(None).hot_threshold == 8
        assert TieringPolicy.of({"hot_threshold": 5}).hot_threshold == 5
        with pytest.raises(TypeError):
            TieringPolicy.of(42)


class TestTraceFormation:
    def test_loop_unrolls_along_taken_edges(self):
        code = [Instruction(Op.HALT)] + _countdown(9)
        policy = TieringPolicy(hot_threshold=2, max_trace_instructions=11,
                               max_trace_blocks=8)
        # The profile says the loop block at 2 branches back to itself.
        form = form_trace(code, 2, {2: 2}, len(code), policy)
        assert form.entry == 2
        assert len(form.block_entries) >= 2
        assert all(e == 2 for e in form.block_entries)
        assert form.instructions <= policy.max_trace_instructions
        # Every unrolled iteration speculates the back edge as a guard.
        guards = [s for s in form.steps if s[0] == "guard"]
        assert guards and all(s[3] for s in guards)

    def test_fall_through_profile_speculates_exit(self):
        code = [Instruction(Op.HALT)] + _countdown(9)
        policy = TieringPolicy(hot_threshold=2)
        # Profile says the branch at 3 falls through to the RET at 4.
        form = form_trace(code, 2, {2: 4}, len(code), policy)
        assert form.block_entries == [2, 4]
        kinds = [s[0] for s in form.steps]
        assert "guard" in kinds
        guard = next(s for s in form.steps if s[0] == "guard")
        assert guard[3] is False         # speculated NOT taken
        assert form.terminal[0] == "end"  # ends at the RET

    def test_unprofiled_branch_ends_the_trace(self):
        code = [Instruction(Op.HALT)] + _countdown(9)
        form = form_trace(code, 2, {}, len(code), TieringPolicy())
        assert form.block_entries == [2]
        assert form.terminal[0] == "end"

    def test_block_budget_caps_the_trace(self):
        code = [Instruction(Op.HALT)] + _countdown(9)
        policy = TieringPolicy(max_trace_blocks=3)
        form = form_trace(code, 2, {2: 2}, len(code), policy)
        assert len(form.block_entries) <= 3


class TestPromotion:
    def test_hot_loop_forms_a_trace(self):
        report.reset()
        machine, entry = _hot_machine()
        machine.call(entry)
        engine = machine._engine
        assert isinstance(engine, TieredEngine)
        assert engine._traces, "hot loop never promoted"
        stats = report.tiering_stats()
        assert stats["promotions"] >= 1
        assert stats["trace_dispatches"] >= 1
        assert stats["trace_blocks"] >= 2 * stats["promotions"]
        assert stats["trace_length"]["count"] == stats["promotions"]

    def test_promotion_preserves_modeled_cycles(self):
        machine, entry = _hot_machine(30)
        machine.call(entry)
        assert machine.cpu.cycles == _reference_cycles(30)

    def test_promotion_is_one_shot_per_entry(self):
        report.reset()
        machine, entry = _hot_machine()
        machine.call(entry)
        machine.call(entry)     # the entry block itself promotes here
        promos = report.tiering_stats()["promotions"]
        machine.call(entry)
        machine.call(entry)
        assert report.tiering_stats()["promotions"] == promos

    def test_tiering_can_be_disabled(self):
        report.reset()
        machine = Machine(engine="tiered",
                          tiering={"hot_threshold": 2, "enabled": False})
        entry = machine.code.extend(_countdown(30))
        machine.code.link()
        machine.call(entry)
        assert not machine._engine._traces
        assert report.tiering_stats()["promotions"] == 0
        assert machine.cpu.cycles == _reference_cycles(30)


class TestDeopt:
    def test_poison_live_trace_deopts_bit_identically(self):
        report.reset()
        machine, entry = _hot_machine(30)
        machine.call(entry)
        engine = machine._engine
        poisoned = engine.poison_trace()
        assert poisoned is not None and poisoned in engine._traces

        before = machine.cpu.cycles
        machine.call(entry)
        assert machine.cpu.cycles - before == _reference_cycles(30)
        stats = report.tiering_stats()
        assert stats["deopts"] == 1
        # The deopt re-armed the counter and the loop re-promoted.
        assert stats["promotions"] >= 2
        assert poisoned in engine._traces

    def test_poison_arms_the_next_promotion(self):
        report.reset()
        machine, entry = _hot_machine(30)
        assert machine._engine.poison_trace() is None   # nothing live yet
        machine.call(entry)
        # The first trace formed was poisoned, deopted mid-run, and the
        # re-promotion produced a healthy replacement — all inside one
        # call, with reference-identical cycles.
        assert report.tiering_stats()["deopts"] == 1
        assert machine.cpu.cycles == _reference_cycles(30)


class TestSharedHotness:
    def test_absorb_snapshot_reset(self):
        shared = SharedHotness()
        shared.absorb({5: 3, 9: 0}, {5: 9})
        shared.absorb({5: 2}, {})
        counts, succ = shared.snapshot()
        assert counts == {5: 5} and succ == {5: 9}
        assert len(shared) == 1
        shared.reset()
        assert shared.snapshot() == ({}, {})

    def test_seeded_machine_promotes_on_first_dispatch(self):
        report.reset()
        shared = SharedHotness()
        warm, entry = _hot_machine(30)
        warm.call(entry)
        warm._engine.shared = shared
        warm._engine.publish_profile()
        assert len(shared) > 0

        cold = Machine(engine="tiered", tiering=HOT2, tiering_shared=shared)
        e2 = cold.code.extend(_countdown(30))
        cold.code.link()
        # Seeds are capped below the threshold: hot on first dispatch.
        assert cold._engine._counts
        assert all(n < 2 for n in cold._engine._counts.values())
        promos = report.tiering_stats()["promotions"]
        cold.call(e2)
        assert report.tiering_stats()["promotions"] > promos
        assert cold.cpu.cycles == _reference_cycles(30)


class TestHotUnits:
    def test_rows_rank_traces_and_blocks(self):
        machine, entry = _hot_machine(30)
        machine.call(entry)
        rows = machine._engine.hot_units()
        assert rows
        kinds = {row["kind"] for row in rows}
        assert "trace" in kinds
        for row in rows:
            assert set(row) == {"pc", "kind", "dispatches", "blocks",
                                "instructions", "cycles"}
        counts = [row["dispatches"] for row in rows]
        assert counts == sorted(counts, reverse=True)
        assert len(machine._engine.hot_units(top=1)) == 1


LOOP_SRC = """
int make_sum(int n) {
    int vspec x = param(int, 0);
    void cspec c = `{
        int i, s;
        s = 0;
        for (i = 0; i < $n; i++)
            s = s + x;
        return s;
    };
    return (int)compile(c, int);
}
"""


class TestAdaptiveRetier:
    def test_hot_vcode_closure_retiers_to_icode(self):
        """Once a VCODE closure's cumulative exec cycles cross the
        Fig. 5 crossover multiple of its compile cost, the next
        compile() re-instantiates it with ICODE."""
        report.reset()
        eng = Engine(LOOP_SRC, chaos=None)
        # The closure's spec-time+codegen cost dwarfs one run of the
        # generated loop, so a small crossover ratio keeps the test
        # fast: ~2 executions' cumulative cycles trip it.
        with eng.session(backend="vcode", retier_cost_ratio=0.01) as s:
            first = s.request("make_sum", (2000,), call_args=(3,))
            assert first.ok and first.value == 6000
            assert first.path == "cold"
            for _ in range(3):
                assert s.call(first.entry, (3,)) == 6000
            again = s.request("make_sum", (2000,), call_args=(3,))
            assert again.ok and again.value == 6000
            assert again.path == "retier"
        assert report.tiering_stats()["retier_promotions"] >= 1

    def test_retier_can_be_disabled(self):
        report.reset()
        eng = Engine(LOOP_SRC, chaos=None)
        with eng.session(backend="vcode", retier=False,
                         retier_cost_ratio=0.01) as s:
            first = s.request("make_sum", (2000,), call_args=(3,))
            for _ in range(3):
                s.call(first.entry, (3,))
            again = s.request("make_sum", (2000,), call_args=(3,))
            assert again.ok and again.path == "hit"
        assert report.tiering_stats()["retier_promotions"] == 0


class TestStatsReset:
    def test_report_reset_clears_tiering_stats(self):
        machine, entry = _hot_machine()
        machine.call(entry)
        stats = report.tiering_stats()
        assert stats["promotions"] >= 1
        report.reset()
        cleared = report.tiering_stats()
        assert cleared["promotions"] == 0
        assert cleared["trace_dispatches"] == 0
        assert cleared["deopts"] == 0
        assert cleared["trace_length"]["count"] == 0
        assert cleared["fused_by_kind"] == {}
        # The mapping-shaped live view agrees.
        assert report.TIERING_STATS["promotions"] == 0


def test_generated_loop_matches_reference_with_tiny_threshold():
    """An end-to-end compiled program under the hair-trigger policy:
    promotion happens mid-run and the final state matches the
    reference stepper exactly."""
    src = """
    int build(void) {
        int vspec n = param(int, 0);
        void cspec code = `{
            int i, acc;
            acc = 0;
            for (i = 0; i < n; i++) { acc = acc + i * 3; }
            return acc;
        };
        return (int)compile(code, int);
    }
    """
    states = {}
    for engine in ("tiered", "reference"):
        proc = compile_c(src, backend="icode", compile_static=False,
                         engine=engine, tiering=HOT2)
        fn = proc.function(proc.run("build"), "i", "i")
        states[engine] = (fn(40), proc.machine.cpu.cycles)
    assert states["tiered"] == states["reference"]
    assert states["tiered"][0] == sum(i * 3 for i in range(40))
