"""Unit tests for the ICODE pipeline: IR, flow graph, liveness, intervals,
linear scan, graph coloring, peephole, optimizer."""

from repro.core.operands import VReg
from repro.icode.flowgraph import build_flowgraph
from repro.icode.graphcolor import build_interference, graph_color
from repro.icode.intervals import Interval, build_intervals
from repro.icode.ir import IRFunction, IRInstr
from repro.icode.linearscan import linear_scan
from repro.icode.liveness import compute_liveness
from repro.icode import optim
from repro.icode.peephole import peephole
from repro.target.isa import Instruction, Op
from repro.target.program import Label
from repro.verify import regcheck


def assert_disjoint_registers(ivs):
    """Interval-view invariant: no two overlapping intervals share a
    physical register (what the deleted linearscan.check_allocation
    asserted; the production checker is repro.verify.regcheck)."""
    by_reg = {}
    for iv in ivs:
        if iv.reg is None:
            continue
        for other in by_reg.get(iv.reg, ()):
            assert not iv.overlaps(other), f"{iv} and {other} share a register"
        by_reg.setdefault(iv.reg, []).append(iv)


def build_ir(ops):
    ir = IRFunction()
    for instr in ops:
        ir.append(instr)
    return ir


def v(i, cls="i"):
    return VReg(i, cls)


class TestIRDefsUses:
    def test_alu_defs_first_operand(self):
        d, u = IRInstr(Op.ADD, v(0), v(1), v(2)).defs_uses()
        assert d == [v(0)]
        assert set(u) == {v(1), v(2)}

    def test_store_has_no_defs(self):
        d, u = IRInstr(Op.SW, v(0), v(1), 4).defs_uses()
        assert d == []
        assert set(u) == {v(0), v(1)}

    def test_branch_uses_condition(self):
        d, u = IRInstr(Op.BEQZ, v(3), Label()).defs_uses()
        assert d == [] and u == [v(3)]

    def test_call_defs_result_uses_args(self):
        instr = IRInstr("call", v(9), target=v(1),
                        args=[(v(2), "i"), (v(3), "i")], ret_cls="i")
        d, u = instr.defs_uses()
        assert d == [v(9)]
        assert set(u) == {v(1), v(2), v(3)}

    def test_getarg_defines(self):
        d, u = IRInstr("getarg", v(0), 0, ret_cls="i").defs_uses()
        assert d == [v(0)] and u == []

    def test_label_neither(self):
        d, u = IRInstr("label", Label()).defs_uses()
        assert d == [] and u == []

    def test_immediate_operands_ignored(self):
        d, u = IRInstr(Op.ADDI, v(0), v(1), 5).defs_uses()
        assert set(u) == {v(1)}

    def test_new_vreg_classes(self):
        ir = IRFunction()
        a = ir.new_vreg("i")
        b = ir.new_vreg("f")
        assert a.cls == "i" and b.cls == "f" and a.id != b.id


class TestFlowGraph:
    def test_straight_line_single_block(self):
        ir = build_ir([
            IRInstr(Op.LI, v(0), 1),
            IRInstr(Op.ADDI, v(1), v(0), 2),
            IRInstr("ret", v(1), ret_cls="i"),
        ])
        fg = build_flowgraph(ir)
        assert len(fg.blocks) == 1
        assert fg.blocks[0].succs == []

    def test_branch_splits_blocks(self):
        lbl = Label()
        ir = build_ir([
            IRInstr(Op.BEQZ, v(0), lbl),      # B0
            IRInstr(Op.LI, v(1), 1),          # B1
            IRInstr("label", lbl),            # B2
            IRInstr("ret", v(1), ret_cls="i"),
        ])
        fg = build_flowgraph(ir)
        assert len(fg.blocks) == 3
        assert sorted(fg.blocks[0].succs) == [1, 2]
        assert fg.blocks[1].succs == [2]

    def test_jmp_has_single_successor(self):
        lbl = Label()
        ir = build_ir([
            IRInstr(Op.JMP, lbl),
            IRInstr(Op.LI, v(0), 9),   # unreachable
            IRInstr("label", lbl),
            IRInstr("ret", None),
        ])
        fg = build_flowgraph(ir)
        assert fg.blocks[0].succs == [2]

    def test_loop_back_edge(self):
        top = Label()
        ir = build_ir([
            IRInstr("label", top),
            IRInstr(Op.SUBI, v(0), v(0), 1),
            IRInstr(Op.BNEZ, v(0), top),
            IRInstr("ret", None),
        ])
        fg = build_flowgraph(ir)
        assert 0 in fg.blocks[0].succs
        assert fg.blocks[0].preds == [0]

    def test_def_use_sets(self):
        ir = build_ir([
            IRInstr(Op.ADD, v(0), v(1), v(2)),
            IRInstr(Op.ADD, v(3), v(0), v(1)),
        ])
        fg = build_flowgraph(ir)
        block = fg.blocks[0]
        assert v(1) in block.use and v(2) in block.use
        assert v(0) in block.defs
        # v0 is defined before its use: not upward-exposed
        assert v(0) not in block.use


class TestLiveness:
    def test_live_across_branch(self):
        lbl = Label()
        ir = build_ir([
            IRInstr(Op.LI, v(0), 5),          # B0
            IRInstr(Op.BEQZ, v(1), lbl),
            IRInstr(Op.LI, v(2), 1),          # B1
            IRInstr("label", lbl),            # B2
            IRInstr("ret", v(0), ret_cls="i"),
        ])
        fg = build_flowgraph(ir)
        compute_liveness(fg)
        assert v(0) in fg.blocks[0].live_out
        assert v(0) in fg.blocks[2].live_in

    def test_dead_value_not_live(self):
        ir = build_ir([
            IRInstr(Op.LI, v(0), 5),
            IRInstr(Op.LI, v(1), 6),
            IRInstr("ret", v(1), ret_cls="i"),
        ])
        fg = build_flowgraph(ir)
        compute_liveness(fg)
        assert v(0) not in fg.blocks[0].live_in

    def test_loop_keeps_value_live(self):
        top = Label()
        ir = build_ir([
            IRInstr(Op.LI, v(0), 10),
            IRInstr("label", top),
            IRInstr(Op.SUBI, v(0), v(0), 1),
            IRInstr(Op.BNEZ, v(0), top),
            IRInstr("ret", None),
        ])
        fg = build_flowgraph(ir)
        iterations = compute_liveness(fg)
        loop_block = fg.blocks[1]
        assert v(0) in loop_block.live_in
        assert iterations >= 2


class TestIntervals:
    def test_interval_spans_first_to_last(self):
        ir = build_ir([
            IRInstr(Op.LI, v(0), 1),       # 0
            IRInstr(Op.LI, v(1), 2),       # 1
            IRInstr(Op.ADD, v(2), v(0), v(1)),  # 2
            IRInstr("ret", v(2), ret_cls="i"),  # 3
        ])
        fg = build_flowgraph(ir)
        compute_liveness(fg)
        ivs = {iv.vreg: iv for iv in build_intervals(ir, fg)}
        assert (ivs[v(0)].start, ivs[v(0)].end) == (0, 2)
        assert (ivs[v(2)].start, ivs[v(2)].end) == (2, 3)

    def test_sorted_by_end_point(self):
        ir = build_ir([
            IRInstr(Op.LI, v(0), 1),
            IRInstr(Op.LI, v(1), 2),
            IRInstr(Op.ADD, v(2), v(0), v(1)),
            IRInstr("ret", v(2), ret_cls="i"),
        ])
        fg = build_flowgraph(ir)
        compute_liveness(fg)
        ivs = build_intervals(ir, fg)
        ends = [iv.end for iv in ivs]
        assert ends == sorted(ends)

    def test_loop_interval_covers_whole_loop(self):
        top = Label()
        ir = build_ir([
            IRInstr(Op.LI, v(0), 3),          # 0
            IRInstr("label", top),            # 1
            IRInstr(Op.LI, v(1), 7),          # 2
            IRInstr(Op.SUBI, v(0), v(0), 1),  # 3
            IRInstr(Op.BNEZ, v(0), top),      # 4
            IRInstr("ret", v(1), ret_cls="i"),  # 5
        ])
        fg = build_flowgraph(ir)
        compute_liveness(fg)
        ivs = {iv.vreg: iv for iv in build_intervals(ir, fg)}
        assert ivs[v(0)].start == 0 and ivs[v(0)].end == 4


def make_intervals(spans):
    ivs = [Interval(v(i), s, e) for i, (s, e) in enumerate(spans)]
    ivs.sort(key=lambda iv: (iv.end, iv.start))
    return ivs


def slots():
    counter = [0]

    def alloc():
        counter[0] += 1
        return counter[0] - 1

    return alloc


class TestLinearScan:
    def test_no_spill_when_registers_suffice(self):
        ivs = make_intervals([(0, 1), (2, 3), (4, 5)])
        spilled = linear_scan(ivs, [100], slots())
        assert spilled == 0
        assert_disjoint_registers(ivs)

    def test_register_reuse_after_expiry(self):
        ivs = make_intervals([(0, 1), (2, 3)])
        linear_scan(ivs, [100], slots())
        assert ivs[0].reg == ivs[1].reg == 100

    def test_spills_longest_interval(self):
        # one long interval overlapping two short ones; R=1 and the long
        # one (earliest start) should be evicted
        ivs = make_intervals([(0, 10), (1, 2), (3, 4)])
        spilled = linear_scan(ivs, [100], slots())
        assert spilled >= 1
        long_iv = next(iv for iv in ivs if iv.end == 10)
        assert long_iv.location is not None
        assert_disjoint_registers(ivs)

    def test_all_overlapping_with_one_register(self):
        ivs = make_intervals([(0, 9), (0, 9), (0, 9)])
        spilled = linear_scan(ivs, [100], slots())
        assert spilled == 2
        assert sum(1 for iv in ivs if iv.reg is not None) == 1
        assert_disjoint_registers(ivs)

    def test_no_overlap_same_register_invariant(self):
        ivs = make_intervals(
            [(0, 5), (2, 8), (6, 9), (1, 3), (4, 7), (0, 2)]
        )
        linear_scan(ivs, [1, 2, 3], slots())
        assert_disjoint_registers(ivs)


class TestRegcheck:
    """The independent allocation checker (repro.verify.regcheck)."""

    def _straightline_ir(self):
        return build_ir([
            IRInstr(Op.LI, v(0), 1),
            IRInstr(Op.LI, v(1), 2),
            IRInstr(Op.ADD, v(2), v(0), v(1)),
            IRInstr("ret", v(2), ret_cls="i"),
        ])

    def _iv(self, vr, start, end, reg=None, slot=None):
        iv = Interval(vr, start, end)
        iv.reg = reg
        iv.location = slot
        return iv

    def test_clean_allocation_passes(self):
        ivs = [self._iv(v(0), 0, 2, reg=14), self._iv(v(1), 1, 2, reg=15),
               self._iv(v(2), 2, 3, reg=14)]
        assert regcheck.check_allocation(self._straightline_ir(), ivs) == []

    def test_detects_register_aliasing(self):
        ivs = [self._iv(v(0), 0, 2, reg=14), self._iv(v(1), 1, 2, reg=14),
               self._iv(v(2), 2, 3, reg=15)]
        diags = regcheck.check_allocation(self._straightline_ir(), ivs)
        assert any(d.rule == "register-aliasing" for d in diags)

    def test_detects_spill_slot_overlap(self):
        # The case the deleted linearscan.check_allocation never covered:
        # two simultaneously live values spilled to the same slot.
        ivs = [self._iv(v(0), 0, 2, slot=0), self._iv(v(1), 1, 2, slot=0),
               self._iv(v(2), 2, 3, reg=14)]
        diags = regcheck.check_allocation(self._straightline_ir(), ivs)
        assert any(d.rule == "spill-slot-overlap" for d in diags)

    def test_detects_caller_saved_across_call(self):
        ir = build_ir([
            IRInstr(Op.LI, v(0), 1),
            IRInstr("hostcall", None, target=0, args=[], ret_cls=None),
            IRInstr("ret", v(0), ret_cls="i"),
        ])
        ivs = [self._iv(v(0), 0, 2, reg=4)]  # a0: clobbered by the callee
        diags = regcheck.check_allocation(ir, ivs)
        assert any(d.rule == "caller-saved-across-call" for d in diags)

    def test_detects_unallocated_value(self):
        ivs = [self._iv(v(0), 0, 2, reg=14), self._iv(v(1), 1, 2),
               self._iv(v(2), 2, 3, reg=15)]
        diags = regcheck.check_allocation(self._straightline_ir(), ivs)
        assert any(d.rule == "unallocated" for d in diags)

    def test_ignores_conflicts_in_unreachable_blocks(self):
        # A folded branch (`1 ? 0 : b`) leaves its dead arm in the IR; a
        # use there may extend a value's interval over another value's
        # register, but the aliasing can never execute (found by
        # hypothesis: tests/test_properties.py).
        skip, join = Label(), Label()
        ir = build_ir([
            IRInstr("getarg", v(1), 1, ret_cls="i"),
            IRInstr(Op.ADDI, v(3), v(1), 0),
            IRInstr(Op.LI, v(4), 0),
            IRInstr(Op.JMP, join),
            IRInstr("label", skip),
            IRInstr(Op.MOV, v(4), v(1)),   # dead arm: v1 "live" here
            IRInstr("label", join),
            IRInstr(Op.ADD, v(5), v(3), v(4)),
            IRInstr("ret", v(5), ret_cls="i"),
        ])
        ivs = [self._iv(v(1), 0, 5, reg=15), self._iv(v(3), 1, 7, reg=15),
               self._iv(v(4), 2, 7, reg=14), self._iv(v(5), 7, 8, reg=14)]
        assert regcheck.check_allocation(ir, ivs) == []


class TestGraphColoring:
    def _ir_with_pressure(self, n):
        """n values all live simultaneously, then all consumed."""
        ops = [IRInstr(Op.LI, v(i), i) for i in range(n)]
        acc = v(n)
        ops.append(IRInstr(Op.ADD, acc, v(0), v(1)))
        for i in range(2, n):
            ops.append(IRInstr(Op.ADD, acc, acc, v(i)))
        ops.append(IRInstr("ret", acc, ret_cls="i"))
        return build_ir(ops)

    def test_interference_edges(self):
        ir = self._ir_with_pressure(3)
        fg = build_flowgraph(ir)
        compute_liveness(fg)
        adj = build_interference(ir, fg)
        assert v(1) in adj[v(0)] or v(0) in adj[v(1)]

    def test_coloring_valid(self):
        ir = self._ir_with_pressure(4)
        fg = build_flowgraph(ir)
        compute_liveness(fg)
        ivs = build_intervals(ir, fg)
        graph_color(ir, fg, ivs, [1, 2, 3, 4, 5], [], slots())
        adj = build_interference(ir, fg)
        colors = {iv.vreg: iv.reg for iv in ivs}
        for a, neighbors in adj.items():
            for b in neighbors:
                if colors.get(a) is not None and colors.get(b) is not None:
                    assert colors[a] != colors[b]

    def test_spill_when_insufficient_colors(self):
        ir = self._ir_with_pressure(6)
        fg = build_flowgraph(ir)
        compute_liveness(fg)
        ivs = build_intervals(ir, fg)
        spilled = graph_color(ir, fg, ivs, [1, 2], [], slots())
        assert spilled > 0


class TestPeephole:
    def test_removes_self_move(self):
        body = [
            Instruction(Op.MOV, 5, 5),
            Instruction(Op.RET),
        ]
        out = peephole(body, [], Label())
        assert len(out) == 1

    def test_keeps_real_move(self):
        body = [Instruction(Op.MOV, 5, 6), Instruction(Op.RET)]
        out = peephole(body, [], Label())
        assert len(out) == 2

    def test_removes_jump_to_next(self):
        lbl = Label()
        lbl.address = 1
        body = [Instruction(Op.JMP, lbl), Instruction(Op.RET)]
        out = peephole(body, [lbl], Label())
        assert out[0].op is Op.RET

    def test_removes_unreachable_after_jmp(self):
        lbl = Label()
        lbl.address = 3
        body = [
            Instruction(Op.JMP, lbl),
            Instruction(Op.LI, 5, 1),   # unreachable
            Instruction(Op.LI, 5, 2),   # unreachable
            Instruction(Op.RET),
        ]
        out = peephole(body, [lbl], Label())
        # the unreachable LIs disappear, after which the JMP targets the
        # very next instruction and is itself removed
        assert [i.op for i in out] == [Op.RET]
        assert lbl.address == 0

    def test_label_remapping_preserves_targets(self):
        lbl = Label()
        lbl.address = 2
        body = [
            Instruction(Op.MOV, 5, 5),  # removed
            Instruction(Op.LI, 6, 1),
            Instruction(Op.SUBI, 6, 6, 1),  # label points here
            Instruction(Op.BNEZ, 6, lbl),
            Instruction(Op.RET),
        ]
        out = peephole(body, [lbl], Label())
        assert out[lbl.address].op is Op.SUBI


class TestOptimizer:
    def test_constant_folding(self):
        ir = build_ir([
            IRInstr(Op.LI, v(0), 4),
            IRInstr(Op.ADDI, v(1), v(0), 3),
            IRInstr("ret", v(1), ret_cls="i"),
        ])
        optim.optimize(ir, build_flowgraph, compute_liveness)
        li = [i for i in ir.instrs if i.op is Op.LI and i.a == v(1)]
        assert li and li[0].b == 7

    def test_copy_propagation(self):
        ir = build_ir([
            IRInstr("getarg", v(0), 0, ret_cls="i"),
            IRInstr(Op.MOV, v(1), v(0)),
            IRInstr(Op.ADDI, v(2), v(1), 1),
            IRInstr("ret", v(2), ret_cls="i"),
        ])
        optim.optimize(ir, build_flowgraph, compute_liveness)
        add = next(i for i in ir.instrs if i.op is Op.ADDI)
        assert add.b == v(0)

    def test_dead_code_removed(self):
        ir = build_ir([
            IRInstr(Op.LI, v(0), 4),
            IRInstr(Op.LI, v(1), 5),  # dead
            IRInstr("ret", v(0), ret_cls="i"),
        ])
        optim.optimize(ir, build_flowgraph, compute_liveness)
        assert all(i.a != v(1) for i in ir.instrs)

    def test_stores_never_removed(self):
        ir = build_ir([
            IRInstr(Op.LI, v(0), 4),
            IRInstr(Op.SW, v(0), None, 256),
            IRInstr("ret", None),
        ])
        optim.optimize(ir, build_flowgraph, compute_liveness)
        assert any(i.op is Op.SW for i in ir.instrs)

    def test_reg_form_folds_to_imm_form(self):
        ir = build_ir([
            IRInstr("getarg", v(0), 0, ret_cls="i"),
            IRInstr(Op.LI, v(1), 3),
            IRInstr(Op.MUL, v(2), v(0), v(1)),
            IRInstr("ret", v(2), ret_cls="i"),
        ])
        optim.optimize(ir, build_flowgraph, compute_liveness)
        assert any(i.op is Op.MULI for i in ir.instrs)
