"""Property tests for proof-carrying guard elision.

The contract of ``analysis="on"``: observable behavior is *bit-identical*
to the checked configuration — same results, same traps, same
program-visible memory — and modeled execution cycles are strictly no
worse (every elided check saves a cycle and elision never adds work on
an executed path; only the never-executed high-frame probe may be
added, and only when frame elision pays for it many times over).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.errors import MachineError
from tests.conftest import compile_c

_VARS = ("a", "b", "c")


@st.composite
def statements(draw, depth=0):
    """Statements over three scalars and a global array: arithmetic,
    conditionals, bounded loops, and fixed-index array traffic (the
    array ops exercise const/dup elision; spilled scalars exercise
    frame elision)."""
    kind = draw(st.integers(0, 7 if depth < 2 else 4))
    v = draw(st.sampled_from(_VARS))
    w = draw(st.sampled_from(_VARS))
    k = draw(st.integers(-20, 20))
    idx = abs(k) % 8
    if kind == 0:
        return f"{v} = {w} + {k};"
    if kind == 1:
        op = draw(st.sampled_from(["+", "-", "*", "&", "|", "^"]))
        return f"{v} = {v} {op} {w};"
    if kind == 2:
        return f"{v} = {w} / {abs(k) + 1};"
    if kind == 3:
        return f"g[{idx}] = {w};"
    if kind == 4:
        return f"{v} = g[{idx}] + g[{idx}];"
    if kind == 5:
        rel = draw(st.sampled_from(["<", ">", "==", "!="]))
        body = draw(statements(depth=depth + 1))
        other = draw(statements(depth=depth + 1))
        return f"if ({v} {rel} {k}) {{ {body} }} else {{ {other} }}"
    if kind == 6:
        body = draw(statements(depth=depth + 1))
        n = draw(st.integers(1, 6))
        lv = "ij"[depth]
        return f"for ({lv} = 0; {lv} < {n}; {lv}++) {{ {body} }}"
    body = draw(statements(depth=depth + 1))
    return f"{{ {body} {v} = {v} ^ {k}; }}"


@st.composite
def programs(draw):
    stmts = draw(st.lists(statements(), min_size=1, max_size=6))
    return "\n        ".join(stmts)


def _run(src, analysis, a, b, c):
    proc = compile_c(src, backend="icode", compile_static=False,
                     analysis=analysis, verify="paranoid")
    entry = proc.run("build")
    result = proc.function(entry, "iii", "i")(a, b, c)
    memory = proc.machine.memory
    visible = bytes(memory._data[:memory.stack_base])
    return result, visible, proc.machine.cpu.cycles


@settings(max_examples=25, deadline=None)
@given(body=programs(), a=st.integers(-50, 50), b=st.integers(-50, 50),
       c=st.integers(-50, 50))
def test_elision_is_observationally_free(body, a, b, c):
    src = f"""
    int g[8];
    int build(void) {{
        int vspec a = param(int, 0);
        int vspec b = param(int, 1);
        int vspec c = param(int, 2);
        void cspec code = `{{
            int i, j;
            {body}
            return a * 3 + b * 5 + c * 7 + g[0] + g[7];
        }};
        return (int)compile(code, int);
    }}
    """
    r_off, m_off, cy_off = _run(src, False, a, b, c)
    r_on, m_on, cy_on = _run(src, True, a, b, c)
    assert r_on == r_off, (body, r_on, r_off)
    assert m_on == m_off, body
    assert cy_on <= cy_off, (body, cy_on, cy_off)


@settings(max_examples=10, deadline=None)
@given(b=st.integers(-5, 0), a=st.integers(-50, 50))
def test_traps_are_identical(a, b):
    """A trapping program traps the same way — same error type, same
    message — with elision on and off (b <= 0 can divide by zero)."""
    src = """
    int build(void) {
        int vspec a = param(int, 0);
        int vspec b = param(int, 1);
        return (int)compile(`(a / (b + %d)), int);
    }
    """ % (-b)
    outcomes = []
    for analysis in (False, True):
        proc = compile_c(src, backend="icode", compile_static=False,
                         analysis=analysis, verify="paranoid")
        fn = proc.function(proc.run("build"), "ii", "i")
        try:
            outcomes.append(("ok", fn(a, b)))
        except MachineError as exc:
            outcomes.append((type(exc).__name__, str(exc)))
    assert outcomes[0] == outcomes[1], outcomes
