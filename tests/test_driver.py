"""Driver/Process-level tests: options, lifecycle, services, reports."""

import pytest

from repro import BackendKind, CodegenError, TccCompiler, TccError
from repro.icode.backend import IcodeBackend
from repro.vcode.machine import VcodeBackend
from tests.conftest import compile_c


class TestCompilerDriver:
    def test_compile_returns_program_with_cgfs(self):
        prog = TccCompiler().compile(
            "void f(void) { int cspec a = `1; int cspec b = `2; }"
        )
        assert len(prog.cgfs()) == 2
        assert all(cgf.label.startswith("cgf_f_") for cgf in prog.cgfs())

    def test_prelude_injected_once(self):
        prog = TccCompiler().compile("int f(void) { return 0; }")
        assert "memcpy" in prog.tu.functions
        assert "memset" in prog.tu.functions

    def test_user_memcpy_wins_over_prelude(self):
        src = """
        int memcpy_called;
        void memcpy(char *d, char *s, int n) { memcpy_called = 1; }
        void f(void) { memcpy((char *)0, (char *)0, 0); }
        """
        proc = compile_c(src)
        proc.run("f")
        decl = proc.program.tu.globals["memcpy_called"]
        assert proc.machine.memory.load_word(decl.address) == 1

    def test_prelude_optional(self):
        tcc = TccCompiler(include_prelude=False)
        prog = tcc.compile("int f(void) { return 0; }")
        assert "memcpy" not in prog.tu.functions

    def test_program_reusable_across_processes(self):
        prog = TccCompiler().compile("int f(int x) { return x + 1; }")
        a = prog.start()
        b = prog.start()
        assert a.run("f", 1) == 2
        assert b.run("f", 5) == 6
        assert a.machine is not b.machine


class TestProcessOptions:
    def test_backend_selection_by_string(self):
        proc = compile_c("int f(void) { return 0; }", backend="vcode")
        assert isinstance(proc.make_backend(), VcodeBackend)

    def test_backend_selection_by_enum(self):
        proc = compile_c("int f(void) { return 0; }",
                         backend=BackendKind.ICODE)
        assert isinstance(proc.make_backend(), IcodeBackend)

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError):
            compile_c("int f(void) { return 0; }", backend="jit9000")

    def test_regalloc_option_threaded_through(self):
        proc = compile_c("int f(void) { return 0; }", regalloc="color")
        assert proc.make_backend().regalloc == "color"

    def test_compile_static_false_skips_compilation(self):
        proc = compile_c("int f(void) { return 0; }", compile_static=False)
        assert proc.static_entry("f") is None
        with pytest.raises(CodegenError, match="not statically compiled"):
            proc.static_function("f")

    def test_unknown_function_run(self):
        proc = compile_c("int f(void) { return 0; }")
        with pytest.raises(TccError, match="no function"):
            proc.run("missing")


class TestProcessServices:
    def test_intern_string_dedupes(self):
        proc = compile_c("int f(void) { return 0; }")
        a = proc.intern_string("hello")
        b = proc.intern_string("hello")
        c = proc.intern_string("world")
        assert a == b != c
        assert proc.machine.memory.read_cstring(a) == "hello"

    def test_static_function_signature_inferred(self):
        proc = compile_c("double mix(int a, double b) { return a + b; }")
        fn = proc.static_function("mix")
        assert fn.signature == "if"
        assert fn.returns == "f"
        assert fn(1, 2.5) == 3.5

    def test_compile_count_and_stats(self):
        src = """
        int build(void) {
            int a, b;
            a = (int)compile(`1, int);
            b = (int)compile(`2, int);
            return b;
        }
        """
        proc = compile_c(src)
        proc.run("build")
        assert proc.compile_count == 2
        assert proc.cost.lifetime.generated_instructions > 0

    def test_run_cycles_isolated_per_call(self):
        proc = compile_c("int f(int n) { int s; s = 0; "
                         "while (n--) s += n; return s; }")
        fn = proc.static_function("f")
        _, c1 = proc.run_cycles(fn, 10)
        _, c2 = proc.run_cycles(fn, 10)
        assert c1 == c2  # deterministic machine

    def test_global_cells_materialized(self):
        src = "int g = 42; double d = 1.5; char msg[4] = {104, 105, 0, 0};"
        proc = compile_c(src + " int f(void) { return g; }")
        g = proc.program.tu.globals["g"]
        assert proc.machine.memory.load_word(g.address) == 42
        d = proc.program.tu.globals["d"]
        assert proc.machine.memory.load_double(d.address) == 1.5

    def test_string_global_initializer(self):
        proc = compile_c('char *greeting = "yo"; '
                         "int f(void) { return greeting[0]; }")
        assert proc.run("f") == ord("y")

    def test_last_backend_exposed(self):
        proc = compile_c(
            "int build(void) { return (int)compile(`1, int); }",
            backend="vcode",
        )
        proc.run("build")
        assert isinstance(proc.last_backend, VcodeBackend)


class TestErrorQuality:
    def test_parse_error_has_location(self):
        from repro.errors import ParseError

        with pytest.raises(ParseError) as exc:
            TccCompiler().compile("int f(void) {\n  1 +;\n}")
        assert exc.value.loc is not None
        assert exc.value.loc.line >= 2

    def test_type_error_message_names_identifier(self):
        from repro.errors import TypeError_

        with pytest.raises(TypeError_, match="mystery"):
            TccCompiler().compile("int f(void) { return mystery; }")

    def test_codegen_error_for_sparse_param_indices(self):
        src = """
        int build(void) {
            int vspec p = param(int, 9);
            return (int)compile(`(p), int);
        }
        """
        proc = compile_c(src)
        with pytest.raises(CodegenError, match="dense"):
            proc.run("build")

    def test_codegen_error_for_too_many_params(self):
        decls = "".join(
            f"int vspec p{i} = param(int, {i});" for i in range(7)
        )
        src = f"""
        int build(void) {{
            {decls}
            return (int)compile(`(p0 + p6), int);
        }}
        """
        proc = compile_c(src)
        with pytest.raises(CodegenError, match="parameters"):
            proc.run("build")
