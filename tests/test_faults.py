"""Fault paths: traps, guard regions, the watchdog, fault injection, and
the ICODE->VCODE graceful-degradation fallback."""

import pytest

from repro import report
from repro.errors import (
    CodegenError,
    CodeSegmentExhausted,
    CycleBudgetExceeded,
    MachineError,
    OutOfMemory,
    RuntimeTccError,
    SegmentationFault,
    UnalignedAccess,
)
from repro.runtime.arena import Arena
from repro.target.cpu import Machine
from repro.target.isa import Instruction, Op, Reg
from repro.target.memory import Memory
from repro.vcode.machine import VcodeBackend
from tests.conftest import compile_c


class TestTrapTaxonomy:
    def test_all_traps_are_machine_errors(self):
        for trap in (SegmentationFault, UnalignedAccess, CycleBudgetExceeded,
                     CodeSegmentExhausted, OutOfMemory):
            assert issubclass(trap, MachineError)

    def test_guard_page_hit_carries_context(self):
        machine = Machine()
        entry = machine.code.extend([
            Instruction(Op.LW, Reg.RV, Reg.ZERO, 0),
            Instruction(Op.RET),
        ])
        machine.code.link()
        with pytest.raises(SegmentationFault) as exc:
            machine.call(entry)
        trap = exc.value
        assert trap.pc == entry
        assert "lw" in trap.instr
        assert "null guard" in str(trap)

    def test_stack_guard_gap_traps(self):
        machine = Machine()
        gap = machine.memory.heap_limit  # first byte of the guard gap
        entry = machine.code.extend([
            Instruction(Op.SW, Reg.ZERO, Reg.ZERO, gap),
            Instruction(Op.RET),
        ])
        machine.code.link()
        with pytest.raises(SegmentationFault, match="guard"):
            machine.call(entry)

    def test_unaligned_word_access_traps(self):
        machine = Machine()
        addr = machine.memory.alloc(8)
        entry = machine.code.extend([
            Instruction(Op.LW, Reg.RV, Reg.ZERO, addr + 2),
            Instruction(Op.RET),
        ])
        machine.code.link()
        with pytest.raises(UnalignedAccess) as exc:
            machine.call(entry)
        assert exc.value.pc == entry
        assert "lw" in exc.value.instr

    def test_host_side_trap_has_no_pc(self):
        with pytest.raises(SegmentationFault) as exc:
            Memory().load_word(0)
        assert exc.value.pc is None

    def test_trap_names_dynamic_function_from_install_map(self):
        src = """
        int build(void) {
            int * vspec p = param(int *, 0);
            return (int)compile(`(*p), int);
        }
        """
        proc = compile_c(src)
        entry = proc.run("build")
        with pytest.raises(SegmentationFault) as exc:
            proc.machine.call(entry, (0,))  # null pointer argument
        assert exc.value.function is not None
        assert "cgf_build" in exc.value.function


class TestWatchdog:
    def test_infinite_generated_loop_trips_budget(self):
        src = """
        int build(void) {
            return (int)compile(`{
                int i;
                i = 0;
                while (1) i = i + 1;
                return i;
            }, int);
        }
        """
        proc = compile_c(src, fuel=20_000)
        entry = proc.run("build")
        fn = proc.function(entry, "", "i")
        with pytest.raises(CycleBudgetExceeded, match="budget"):
            fn()

    def test_spec_time_interpreter_has_a_budget_too(self):
        src = """
        int spin(void) {
            int i;
            i = 0;
            while (1) i = i + 1;
            return i;
        }
        """
        proc = compile_c(src, compile_static=False, spec_fuel=5_000)
        with pytest.raises(CycleBudgetExceeded, match="spec-time"):
            proc.run("spin")

    def test_budget_is_per_call(self):
        # A finite loop traps under a tight per-call budget, then the same
        # code completes when a later call brings a bigger budget.
        machine = Machine()
        entry = machine.code.extend([
            Instruction(Op.LI, Reg.T0, 500),
            Instruction(Op.SUBI, Reg.T0, Reg.T0, 1),
            Instruction(Op.BNEZ, Reg.T0, 2),
            Instruction(Op.LI, Reg.RV, 7),
            Instruction(Op.RET),
        ])
        machine.code.link()
        with pytest.raises(CycleBudgetExceeded):
            machine.call(entry, fuel=100)
        assert machine.call(entry, fuel=10_000) == 7


class TestFaultInjection:
    def test_injected_alloc_failure_is_one_shot(self):
        m = Memory()
        m.inject_alloc_failure(2)
        m.alloc(8)                      # 1st alloc unaffected
        with pytest.raises(OutOfMemory, match="injected"):
            m.alloc(8)                  # 2nd alloc fails
        m.alloc(8)                      # and the fault is spent

    def test_recovery_via_arena_rollback(self):
        arena = Arena(memory=Memory(), name="scratch")
        before = arena.alloc(16)
        arena.mark()
        arena.memory.inject_alloc_failure(1)
        with pytest.raises(OutOfMemory):
            arena.alloc(16)
        arena.release()
        assert arena.alloc(16) > before  # arena usable after recovery

    def test_injected_emit_failure(self):
        machine = Machine()
        machine.code.inject_emit_failure(2)
        machine.code.emit(Instruction(Op.NOP))
        with pytest.raises(CodeSegmentExhausted, match="injected"):
            machine.code.emit(Instruction(Op.NOP))
        machine.code.emit(Instruction(Op.NOP))  # one-shot

    def test_real_code_segment_exhaustion(self):
        machine = Machine(code_capacity=4)  # HALT sentinel + 3 slots
        with pytest.raises(CodeSegmentExhausted, match="capacity"):
            machine.code.extend([Instruction(Op.NOP)] * 4)


ADDER = """
int build(int n) {
    int vspec p = param(int, 0);
    return (int)compile(`($n + p), int);
}
"""


class TestBackendFallback:
    def test_icode_falls_back_to_vcode_and_still_computes(self):
        report.reset_fallbacks()
        proc = compile_c(ADDER, backend="icode")
        proc.machine.code.inject_emit_failure(2)
        entry = proc.run("build", 10)
        fn = proc.function(entry, "i", "i")
        assert fn(5) == 15              # correct result via the fallback
        assert report.fallback_count() == 1
        assert report.FALLBACK_STATS["events"][0][:2] == ("icode", "vcode")
        assert isinstance(proc.last_backend, VcodeBackend)

    def test_rollback_leaves_segment_linkable(self):
        report.reset_fallbacks()
        proc = compile_c(ADDER, backend="icode")
        proc.machine.code.inject_emit_failure(2)
        first = proc.run("build", 1)
        second = proc.run("build", 2)   # a clean ICODE compile afterwards
        assert proc.function(first, "i", "i")(10) == 11
        assert proc.function(second, "i", "i")(10) == 12
        from repro.target.program import Label

        assert not any(
            isinstance(v, Label)
            for i in proc.machine.code.instructions
            for v in (i.a, i.b, i.c)
        )

    def test_fallback_can_be_disabled(self):
        proc = compile_c(ADDER, backend="icode", fallback=False)
        proc.machine.code.inject_emit_failure(2)
        with pytest.raises(CodeSegmentExhausted):
            proc.run("build", 10)

    def test_vcode_failures_do_not_retry(self):
        report.reset_fallbacks()
        proc = compile_c(ADDER, backend="vcode")
        proc.machine.code.inject_emit_failure(2)
        with pytest.raises(CodeSegmentExhausted):
            proc.run("build", 10)
        assert report.fallback_count() == 0

    def test_failed_compile_does_not_leak_params(self):
        # regression: a compile() that dies must still reset the pending
        # param() list, or the leaked vspecs raise a bogus "dense indices"
        # error on the next, unrelated compile()
        src = """
        int build_bad(void) {
            int vspec a = param(int, 0);
            int vspec b = param(int, 2);
            return (int)compile(`(a + b), int);
        }
        int build_good(int n) {
            int vspec p = param(int, 0);
            return (int)compile(`($n + p), int);
        }
        """
        proc = compile_c(src, backend="icode")
        with pytest.raises(CodegenError, match="dense indices"):
            proc.run("build_bad")
        assert proc.current_params == []
        entry = proc.run("build_good", 10)   # unaffected by the failure
        assert proc.function(entry, "i", "i")(5) == 15

    def test_failed_instantiation_also_resets_params(self):
        proc = compile_c(ADDER, backend="vcode")
        proc.machine.code.inject_emit_failure(2)
        with pytest.raises(CodeSegmentExhausted):
            proc.run("build", 10)
        assert proc.current_params == []
        entry = proc.run("build", 4)
        assert proc.function(entry, "i", "i")(5) == 9


class TestArenaValidation:
    @pytest.mark.parametrize("align", [0, -8, 3, 6, 2.0])
    def test_bad_alignment_rejected(self, align):
        with pytest.raises(RuntimeTccError, match="power of two"):
            Arena(name="bad").alloc(8, align=align)

    def test_good_alignment_accepted(self):
        arena = Arena(memory=Memory(), name="good")
        assert arena.alloc(8, align=16) % 16 == 0
