"""Corner-case code generation: each scenario runs on the interpreter, the
static back end, and both dynamic back ends, and they must all agree."""

import pytest

from tests.conftest import compile_c

# Each case: (name, params-decl, body, args, expected)
CASES = [
    (
        "char_arithmetic",
        "int a",
        "char c; c = (char)a; return c + 1;",
        (200,),
        -56 + 1,
    ),
    (
        "unsigned_char_load_store",
        "int a",
        "char buf[2]; buf[0] = (char)a; return (unsigned char)buf[0];",
        (-1,),
        255,
    ),
    (
        "negative_modulo",
        "int a",
        "return a % 10;",
        (-37,),
        -7,
    ),
    (
        "shift_by_register",
        "int a",
        "int k; k = 3; return a << k;",
        (5,),
        40,
    ),
    (
        "unsigned_right_shift",
        "int a",
        "unsigned u; u = (unsigned)a; return (int)(u >> 1);",
        (-2,),
        0x7FFFFFFF,
    ),
    (
        "comma_in_condition",
        "int a",
        "int x; if ((x = a + 1, x > 3)) return x; return -x;",
        (5,),
        6,
    ),
    (
        "nested_ternary",
        "int a",
        "return a < 0 ? -1 : a == 0 ? 0 : 1;",
        (-5,),
        -1,
    ),
    (
        "logical_value_of_comparison",
        "int a",
        "return (a > 2) + (a > 4) * 10;",
        (3,),
        1,
    ),
    (
        "float_truthiness",
        "int a",
        "double d; d = a * 0.5; if (d) return 1; return 0;",
        (0,),
        0,
    ),
    (
        "float_to_int_negative_trunc",
        "int a",
        "double d; d = a / 4.0; return (int)d;",
        (-10,),
        -2,
    ),
    (
        "pointer_difference",
        "int a",
        "int arr[10]; int *p; int *q; p = arr + a; q = arr + 2;"
        " return p - q;",
        (7,),
        5,
    ),
    (
        "pointer_comparison",
        "int a",
        "int arr[4]; int *p; p = arr + a; return p > arr;",
        (1,),
        1,
    ),
    (
        "compound_pointer_assignment",
        "int a",
        "int arr[8]; int *p; int i; for (i = 0; i < 8; i++) arr[i] = i;"
        " p = arr; p += a; return *p;",
        (3,),
        3,
    ),
    (
        "postincrement_value_semantics",
        "int a",
        "int i, j; i = a; j = i++ * 10; return j + i;",
        (4,),
        45,
    ),
    (
        "predecrement_through_pointer",
        "int a",
        "int arr[2]; int *p; arr[0] = a; p = arr; --*p; return arr[0];",
        (9,),
        8,
    ),
    (
        "short_circuit_avoids_division",
        "int a",
        "return a != 0 && 100 / a > 5;",
        (0,),
        0,
    ),
    (
        "bitwise_mix",
        "int a",
        "return ((a | 12) & ~5) ^ 3;",
        (9,),
        ((9 | 12) & ~5) ^ 3,
    ),
    (
        "while_false_never_runs",
        "int a",
        "int s; s = a; while (0) s = 99; return s;",
        (17,),
        17,
    ),
    (
        "do_while_runs_once",
        "int a",
        "int s; s = 0; do s = s + a; while (0); return s;",
        (6,),
        6,
    ),
    (
        "deep_expression_pressure",
        "int a",
        "return ((a+1)*(a+2) + (a+3)*(a+4)) * ((a+5)*(a+6) + (a+7)*(a+8))"
        " + ((a+9)*(a+10) + (a+11)*(a+12));",
        (1,),
        ((2 * 3 + 4 * 5) * (6 * 7 + 8 * 9)) + (10 * 11 + 12 * 13),
    ),
    (
        "char_string_walk",
        "int a",
        'char *s; int n; s = "hello"; n = 0; while (s[n]) n++;'
        " return n + a;",
        (10,),
        15,
    ),
    (
        "division_rounding_matrix",
        "int a",
        "return (a / 3) * 100 + (-a / 3) * 10 + (a % 3) + 5;",
        (7,),
        (2 * 100) + (-2 * 10) + 1 + 5,
    ),
]


@pytest.mark.parametrize("name,params,body,args,expected",
                         CASES, ids=[c[0] for c in CASES])
def test_corner_agreement(name, params, body, args, expected):
    src = f"""
    int f({params}) {{
        {body}
    }}
    int build(void) {{
        int vspec a = param(int, 0);
        void cspec c = `{{
            {body}
        }};
        return (int)compile(c, int);
    }}
    """
    results = {}
    proc = compile_c(src)
    results["interp"] = proc.run("f", *args)
    results["static"] = proc.static_function("f")(*args)
    for backend in ("vcode", "icode"):
        dyn = compile_c(src, backend=backend, compile_static=False)
        entry = dyn.run("build")
        results[backend] = dyn.function(entry, "i", "i")(*args)
    results["expected"] = expected
    assert len(set(results.values())) == 1, (name, results)
