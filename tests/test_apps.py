"""Benchmark-application correctness: every app, both back ends, both
static levels, plus the qualitative shapes the paper reports."""

import pytest

from repro.apps import ALL_APPS
from repro.apps.harness import measure

# Cache measurements per configuration: the suite asserts many properties
# of the same runs.
_RESULTS = {}


def result(name, backend="icode", **kw):
    key = (name, backend, tuple(sorted(kw.items())))
    if key not in _RESULTS:
        _RESULTS[key] = measure(ALL_APPS[name], backend=backend, **kw)
    return _RESULTS[key]


@pytest.mark.parametrize("name", sorted(ALL_APPS))
@pytest.mark.parametrize("backend", ["vcode", "icode"])
class TestCorrectness:
    def test_dynamic_and_static_agree_with_oracle(self, name, backend):
        r = result(name, backend)
        assert r.correct, (
            f"{name}/{backend}: dynamic={r.dynamic_result!r} "
            f"static={r.static_result!r} expected={r.expected!r}"
        )

    def test_codegen_stats_populated(self, name, backend):
        r = result(name, backend)
        assert r.generated_instructions > 0
        assert r.codegen_cycles > 0
        assert r.dynamic_cycles > 0
        assert r.static_cycles > 0


class TestPaperShapes:
    """Qualitative claims from section 6.3, asserted as inequalities."""

    def test_most_benchmarks_speed_up(self):
        wins = [n for n in ALL_APPS if result(n).speedup > 1.0]
        assert len(wins) >= 10

    def test_dp_speedup_is_large(self):
        # "the dynamically constructed code is an order of magnitude more
        # efficient" class of results
        assert result("dp").speedup > 5.0

    def test_ms_speedup_matches_paper_band(self):
        # paper: six-fold with ICODE
        assert 3.0 < result("ms").speedup < 9.0

    def test_umshl_does_not_pay_off(self):
        # the hand-tuned static special case wins (ratio <= ~1)
        assert result("umshl").speedup <= 1.05

    def test_umshl_crossover_never_or_huge(self):
        r = result("umshl")
        assert r.crossover is None or r.crossover > 1000

    def test_icode_code_at_least_as_good_as_vcode(self):
        for name in ("ms", "heap", "query", "dp"):
            assert result(name, "icode").dynamic_cycles <= \
                result(name, "vcode").dynamic_cycles

    def test_heap_vcode_suffers_under_register_pressure(self):
        # many live vspecs: VCODE's one-pass allocation spills heavily
        assert result("heap", "vcode").dynamic_cycles > \
            1.5 * result("heap", "icode").dynamic_cycles

    def test_vcode_codegen_much_faster_than_icode(self):
        for name in ("ms", "heap", "query", "binary"):
            v = result(name, "vcode").codegen_cycles
            i = result(name, "icode").codegen_cycles
            assert i > 2.5 * v, name

    def test_vcode_band_100_500_cycles(self):
        for name in ALL_APPS:
            cpi = result(name, "vcode").cycles_per_instruction
            assert 50 < cpi < 500, (name, cpi)

    def test_icode_band_up_to_2500_cycles(self):
        for name in ALL_APPS:
            cpi = result(name, "icode").cycles_per_instruction
            assert 150 < cpi < 2500, (name, cpi)

    def test_icode_cost_dominated_by_allocation(self):
        # paper: 70-80% of ICODE codegen cost is regalloc + liveness work
        for name in ("ms", "heap", "blur"):
            pb = result(name, "icode").phase_breakdown
            ra = pb.get("regalloc", 0) + pb.get("liveness", 0) + \
                pb.get("intervals", 0)
            assert ra / result(name, "icode").cycles_per_instruction > 0.55

    def test_quick_crossovers_for_loopy_benchmarks(self):
        # paper: ms (ICODE), cmp and query pay off after "only one run";
        # we allow a handful since the codegen calibration is coarse
        for name in ("ms", "cmp", "query"):
            assert result(name).crossover <= 4, name

    def test_crossover_definition(self):
        r = result("dp")
        if r.crossover is not None:
            gain = r.static_cycles - r.dynamic_cycles
            assert (r.crossover - 1) * gain < r.codegen_cycles
            assert r.crossover * gain >= r.codegen_cycles

    def test_blur_beats_lcc_static(self):
        # paper: tcc's blur runs ~1.8x faster than the lcc-compiled one
        assert result("blur").speedup > 1.3

    def test_blur_codegen_tiny_fraction_of_run(self):
        # paper: 0.01 s codegen vs ~1 s run
        r = result("blur")
        assert r.codegen_cycles < r.dynamic_cycles


class TestRegallocChoice:
    def test_linear_scan_and_coloring_agree_on_results(self):
        a = measure(ALL_APPS["query"], backend="icode", regalloc="linear")
        b = measure(ALL_APPS["query"], backend="icode", regalloc="color")
        assert a.correct and b.correct
        assert a.dynamic_result == b.dynamic_result

    def test_coloring_measured_separately(self):
        a = measure(ALL_APPS["dp"], backend="icode", regalloc="linear")
        b = measure(ALL_APPS["dp"], backend="icode", regalloc="color")
        assert a.codegen_cycles != b.codegen_cycles
