"""Mutation tests for the factcheck verifier layer.

Each test plants one specific lie in an otherwise-sound fact set and
asserts it is caught by *exactly* the factcheck layer: the mutated code
still passes the layer-4 code audit (the instructions themselves are
well-formed), but the fact re-derivation fails with a factcheck
diagnostic.
"""

import pytest

from repro.errors import VerifyError
from repro.target.cpu import Machine
from repro.target.isa import Instruction, Op, Reg
from repro.target.memory import NULL_GUARD, STACK_GUARD
from repro.verify import codeaudit, factcheck


def install(machine, instructions):
    """Emit a raw instruction list and link; returns (entry, end)."""
    entry = machine.code.extend(instructions)
    machine.code.link()
    return entry, machine.code.here


def assert_caught_by_exactly_factcheck(machine, entry, end, facts,
                                       rule=None):
    """The range passes the code audit but fails fact re-derivation."""
    assert codeaudit.check_range(machine, entry, end) == []
    diags = factcheck.check_function(machine, entry, end, facts)
    assert diags, "factcheck accepted the mutated facts"
    assert all(d.layer == "factcheck" for d in diags)
    if rule is not None:
        assert any(d.rule == rule for d in diags), \
            [(d.rule, d.message) for d in diags]


def frame_function(frame=160, safe_offset=8):
    """A minimal two-anchor frame function: checked low save, checked
    high probe, one elided save between them."""
    return [
        Instruction(Op.SUBI, Reg.SP, Reg.SP, frame),
        Instruction(Op.SW, Reg.RA, Reg.SP, 0),
        Instruction(Op.SW, Reg.ZERO, Reg.SP, frame - 4),
        Instruction(Op.SWS, Reg.S0, Reg.SP, safe_offset),
        Instruction(Op.LWS, Reg.S0, Reg.SP, safe_offset),
        Instruction(Op.LWS, Reg.RA, Reg.SP, 0),
        Instruction(Op.ADDI, Reg.SP, Reg.SP, frame),
        Instruction(Op.RET),
    ]


FRAME_FACTS = [("frame", 3, 8), ("frame", 4, 8), ("frame", 5, 0)]


class TestSoundFactsPass:
    def test_frame_facts_reprove(self):
        machine = Machine()
        entry, end = install(machine, frame_function())
        assert factcheck.check_function(machine, entry, end,
                                        FRAME_FACTS) == []

    def test_const_fact_reproves(self):
        machine = Machine()
        addr = machine.memory.alloc(16)
        entry, end = install(machine, [
            Instruction(Op.LWS, Reg.RV, Reg.ZERO, addr),
            Instruction(Op.RET),
        ])
        facts = [("const", 0, addr, addr)]
        assert factcheck.check_function(machine, entry, end, facts) == []

    def test_dup_fact_reproves(self):
        machine = Machine()
        entry, end = install(machine, [
            Instruction(Op.LW, Reg.RV, Reg.A0, 4),
            Instruction(Op.SWS, Reg.RV, Reg.A0, 4),
            Instruction(Op.RET),
        ])
        facts = [("dup", 1, 0)]
        assert factcheck.check_function(machine, entry, end, facts) == []


class TestMutations:
    def test_interval_off_by_one_at_boundary(self):
        # A const interval nudged one byte past the stable-heap limit:
        # the boundary arithmetic must catch the overflow exactly, with
        # no wrap32 slack.  One byte inside the limit passes; the first
        # byte at the limit is caught.
        machine = Machine()
        machine.memory.alloc(64)
        stable = machine.memory.stable_limit()
        entry, end = install(machine, [
            Instruction(Op.LBS, Reg.RV, Reg.ZERO, stable - 1),
            Instruction(Op.RET),
        ])
        good = [("const", 0, stable - 1, stable - 1)]
        assert factcheck.check_function(machine, entry, end, good) == []
        entry2, end2 = install(machine, [
            Instruction(Op.LBS, Reg.RV, Reg.ZERO, stable),
            Instruction(Op.RET),
        ])
        mutated = [("const", 0, stable, stable)]
        assert_caught_by_exactly_factcheck(machine, entry2, end2, mutated,
                                           rule="unproven-const-access")

    def test_interval_wraps_past_wrap32_boundary(self):
        # lo + width computed without wrap32: an address at the top of
        # the 32-bit space must not wrap to a small "in-bounds" value.
        machine = Machine()
        machine.memory.alloc(64)
        top = (1 << 31) - 4
        entry, end = install(machine, [
            Instruction(Op.LWS, Reg.RV, Reg.ZERO, top),
            Instruction(Op.RET),
        ])
        assert_caught_by_exactly_factcheck(
            machine, entry, end, [("const", 0, top, top)],
            rule="unproven-const-access")

    def test_stale_fact_after_rollback(self):
        # The segment is rolled back and re-used by a different
        # function; the old facts now point at instructions that are
        # not safe-form memory ops at all.
        machine = Machine()
        machine.code.mark()
        body = frame_function()
        entry, _ = install(machine, body)
        # roll back and install different code over the same range
        machine.code.release()
        new_entry, new_end = install(machine, [
            Instruction(Op.LI, Reg.RV, 7),
            Instruction(Op.ADDI, Reg.RV, Reg.RV, 1),
            Instruction(Op.MOV, Reg.A0, Reg.RV),
            Instruction(Op.LI, Reg.A1, 0),
            Instruction(Op.ADD, Reg.RV, Reg.RV, Reg.A0),
            Instruction(Op.SUB, Reg.RV, Reg.RV, Reg.A1),
            Instruction(Op.NOP),
            Instruction(Op.RET),
        ])
        assert new_entry == entry
        assert_caught_by_exactly_factcheck(machine, new_entry, new_end,
                                           FRAME_FACTS,
                                           rule="malformed-fact")

    def test_wrong_arena_region(self):
        # A const fact certifying an address in the *stack* arena: the
        # access would pass the runtime's regional check, but the fact's
        # claim — stable heap, immune to release — is a lie.
        machine = Machine()
        machine.memory.alloc(64)
        stack_addr = machine.memory.stack_base + 64
        entry, end = install(machine, [
            Instruction(Op.LWS, Reg.RV, Reg.ZERO, stack_addr),
            Instruction(Op.RET),
        ])
        assert_caught_by_exactly_factcheck(
            machine, entry, end, [("const", 0, stack_addr, stack_addr)],
            rule="unproven-const-access")
        # ... and one in the null guard page.
        entry2, end2 = install(machine, [
            Instruction(Op.LWS, Reg.RV, Reg.ZERO, NULL_GUARD - 4),
            Instruction(Op.RET),
        ])
        assert_caught_by_exactly_factcheck(
            machine, entry2, end2,
            [("const", 0, NULL_GUARD - 4, NULL_GUARD - 4)],
            rule="unproven-const-access")

    def test_alignment_lie(self):
        # A frame fact for a word access at a misaligned offset: the
        # engine's word fast path requires addr % 4 == 0, and the
        # anchors only prove SP alignment for 4-aligned offsets.
        machine = Machine()
        body = frame_function(safe_offset=10)
        entry, end = install(machine, body)
        facts = [("frame", 3, 10), ("frame", 4, 10), ("frame", 5, 0)]
        assert_caught_by_exactly_factcheck(machine, entry, end, facts,
                                           rule="unproven-frame-access")

    def test_load_bearing_pruned_guard(self):
        # A discharged guard that is NOT entailed by the kept set: the
        # template would match on fewer conditions than it was
        # specialized for.
        kept = [(4096, "w", 1), (4100, "w", 7)]
        harmless = [(4096, "w", 1)]          # exact duplicate: fine
        assert factcheck.check_pruned(kept, harmless) == []
        load_bearing = [(4104, "w", 3)]      # nobody implies this one
        diags = factcheck.check_pruned(kept, load_bearing)
        assert diags and all(d.layer == "factcheck" for d in diags)
        assert diags[0].rule == "unentailed-pruned-guard"
        with pytest.raises(VerifyError):
            factcheck.run_pruned(kept, load_bearing)

    def test_byte_guard_entailment_is_checked_not_assumed(self):
        # byte-of-word entailment with the wrong expected byte
        kept = [(4096, "w", 0x01020304)]
        assert factcheck.check_pruned(kept, [(4097, "bu", 0x03)]) == []
        diags = factcheck.check_pruned(kept, [(4097, "bu", 0x04)])
        assert diags and diags[0].rule == "unentailed-pruned-guard"

    def test_fact_surviving_cache_invalidation(self):
        # A persisted template's const fact certified against a *previous*
        # process's larger heap: after the round-trip, the new machine's
        # stable limit is lower, and the stale fact must not survive.
        from repro.core.codecache import CodeTemplate
        from repro.persist import format as pformat

        donor = Machine()
        addr = donor.memory.alloc(256) + 128     # high in the donor heap
        instructions = [
            Instruction(Op.LWS, Reg.RV, Reg.ZERO, addr),
            Instruction(Op.RET),
        ]
        entry, end = install(donor, instructions)
        facts = [("const", 0, addr, addr)]
        assert factcheck.check_function(donor, entry, end, facts) == []

        template = CodeTemplate.restore(
            values=(), patchable=frozenset(), holes=[], relocs=[],
            instructions=list(instructions), entry=entry, guards=[],
            cold_cycles=10, callees=(), facts=facts, pruned_guards=[])
        body = pformat.encode_template(template)
        revived = pformat.decode_template(body)
        assert revived.facts == [("const", 0, addr, addr)]

        fresh = Machine()                        # heap never grew that far
        assert fresh.memory.stable_limit() <= addr
        f_entry, f_end = install(fresh, list(revived.instructions))
        assert_caught_by_exactly_factcheck(fresh, f_entry, f_end,
                                           revived.facts,
                                           rule="unproven-const-access")

    def test_dup_anchor_severed_by_call(self):
        # A call between anchor and re-access invalidates the window:
        # the callee may have changed the base register's meaning.
        machine = Machine()
        target = machine.code.extend([Instruction(Op.RET)])
        machine.code.link()
        entry, end = install(machine, [
            Instruction(Op.LW, Reg.RV, Reg.A0, 4),
            Instruction(Op.CALL, target),
            Instruction(Op.SWS, Reg.RV, Reg.A0, 4),
            Instruction(Op.RET),
        ])
        assert_caught_by_exactly_factcheck(machine, entry, end,
                                           [("dup", 2, 0)],
                                           rule="unproven-dup-access")

    def test_orphan_safe_op_is_flagged(self):
        # A safe-form op with no fact at all: the elision is unexplained.
        machine = Machine()
        addr = machine.memory.alloc(16)
        entry, end = install(machine, [
            Instruction(Op.LWS, Reg.RV, Reg.ZERO, addr),
            Instruction(Op.RET),
        ])
        assert_caught_by_exactly_factcheck(machine, entry, end, [],
                                           rule="unproven-safe-op")

    def test_frame_span_wider_than_stack_guard(self):
        # Anchors further apart than the guard gap: both could pass with
        # the low one in the heap and the high one in the stack, so the
        # bracketing argument collapses and the fact must be rejected.
        machine = Machine()
        frame = STACK_GUARD + 32                 # not elidable
        entry, end = install(machine, [
            Instruction(Op.SUBI, Reg.SP, Reg.SP, frame),
            Instruction(Op.SW, Reg.RA, Reg.SP, 0),
            Instruction(Op.SW, Reg.ZERO, Reg.SP, frame - 4),
            Instruction(Op.SWS, Reg.S0, Reg.SP, 8),
            Instruction(Op.ADDI, Reg.SP, Reg.SP, frame),
            Instruction(Op.RET),
        ])
        assert_caught_by_exactly_factcheck(machine, entry, end,
                                           [("frame", 3, 8)],
                                           rule="unproven-frame-access")

    def test_sp_redefined_before_access(self):
        # SP is rewritten between the anchors and the elided access: the
        # proof anchored the *old* SP.
        machine = Machine()
        frame = 160
        entry, end = install(machine, [
            Instruction(Op.SUBI, Reg.SP, Reg.SP, frame),
            Instruction(Op.SW, Reg.RA, Reg.SP, 0),
            Instruction(Op.SW, Reg.ZERO, Reg.SP, frame - 4),
            Instruction(Op.SUBI, Reg.SP, Reg.SP, 16),
            Instruction(Op.SWS, Reg.S0, Reg.SP, 8),
            Instruction(Op.ADDI, Reg.SP, Reg.SP, frame + 16),
            Instruction(Op.RET),
        ])
        assert_caught_by_exactly_factcheck(machine, entry, end,
                                           [("frame", 4, 8)],
                                           rule="unproven-frame-access")

    def test_duplicate_coverage_is_flagged(self):
        machine = Machine()
        entry, end = install(machine, frame_function())
        facts = FRAME_FACTS + [("frame", 3, 8)]
        diags = factcheck.check_function(machine, entry, end, facts)
        assert any(d.rule == "malformed-fact" for d in diags)
