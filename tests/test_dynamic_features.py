"""Tests for the extended `C features: dynamic labels/jumps, switch
statements (spec-time, static, and dynamic), and specification arrays."""

import pytest

from repro.errors import RuntimeTccError, TypeError_
from tests.conftest import BACKENDS, compile_c


@pytest.mark.parametrize("backend", BACKENDS)
class TestDynamicLabels:
    def test_label_jump_loop(self, backend):
        src = r"""
        int build(void) {
            int vspec n = param(int, 0);
            int vspec s = local(int);
            void cspec top = make_label();
            void cspec again = jump(top);
            void cspec body = `{
                s = 0;
                top;
                s = s + n;
                n = n - 1;
                if (n > 0) again;
                return s;
            };
            return (int)compile(body, int);
        }
        """
        proc = compile_c(src, backend=backend)
        fn = proc.function(proc.run("build"), "i", "i")
        assert fn(10) == 55
        assert fn(1) == 1

    def test_forward_jump_skips_code(self, backend):
        src = r"""
        int build(void) {
            void cspec out = make_label();
            void cspec skip = jump(out);
            void cspec body = `{
                int r;
                r = 1;
                skip;
                r = 99;
                out;
                return r;
            };
            return (int)compile(body, int);
        }
        """
        proc = compile_c(src, backend=backend)
        assert proc.function(proc.run("build"), "", "i")() == 1

    def test_same_label_multiple_jumps(self, backend):
        src = r"""
        int build(void) {
            int vspec x = param(int, 0);
            void cspec out = make_label();
            void cspec j1 = jump(out);
            void cspec j2 = jump(out);
            void cspec body = `{
                if (x == 1) j1;
                if (x == 2) j2;
                return 0;
                out;
                return x * 10;
            };
            return (int)compile(body, int);
        }
        """
        proc = compile_c(src, backend=backend)
        fn = proc.function(proc.run("build"), "i", "i")
        assert fn(1) == 10
        assert fn(2) == 20
        assert fn(3) == 0

    def test_labels_fresh_per_instantiation(self, backend):
        # the same label cspec compiled twice must not collide
        src = r"""
        int build(void) {
            void cspec top = make_label();
            void cspec go = jump(top);
            int vspec n = param(int, 0);
            void cspec body = `{ top; n = n - 1; if (n) go; return 7; };
            return (int)compile(body, int);
        }
        """
        proc = compile_c(src, backend=backend)
        f1 = proc.function(proc.run("build"), "i", "i")
        f2 = proc.function(proc.run("build"), "i", "i")
        assert f1(3) == 7 and f2(5) == 7

    def test_jump_requires_label(self, backend):
        src = "void f(void) { void cspec c = `{ ; }; void cspec j = jump(c); }"
        proc = compile_c(src, backend=backend)
        with pytest.raises(RuntimeTccError, match="make_label"):
            proc.run("f")


class TestLabelTyping:
    def test_label_in_dynamic_code_rejected(self):
        with pytest.raises(TypeError_, match="make_label"):
            compile_c("void f(void) { void cspec c = `{ make_label(); }; }")

    def test_jump_requires_void_cspec(self):
        with pytest.raises(TypeError_, match="label"):
            compile_c("void f(int x) { void cspec j = jump(x); }")


@pytest.mark.parametrize("backend", BACKENDS)
class TestDynamicSwitch:
    def test_switch_in_generated_code(self, backend):
        src = r"""
        int build(void) {
            int vspec x = param(int, 0);
            void cspec c = `{
                int r;
                switch (x & 3) {
                case 0: r = 100; break;
                case 1: r = 200; break;
                case 2: r = 300;      /* falls through */
                default: r = r + 1;
                }
                return r;
            };
            return (int)compile(c, int);
        }
        """
        proc = compile_c(src, backend=backend)
        fn = proc.function(proc.run("build"), "i", "i")
        assert fn(4) == 100
        assert fn(5) == 200
        assert fn(6) == 301
        # case 3 reads uninitialized r (C UB) — not asserted

    def test_switch_break_does_not_capture_continue(self, backend):
        src = r"""
        int build(void) {
            int vspec n = param(int, 0);
            void cspec c = `{
                int i, s;
                s = 0;
                for (i = 0; i < n; i++) {
                    switch (i & 1) {
                    case 0: continue;
                    default: break;
                    }
                    s = s + i;
                }
                return s;
            };
            return (int)compile(c, int);
        }
        """
        proc = compile_c(src, backend=backend)
        fn = proc.function(proc.run("build"), "i", "i")
        assert fn(10) == sum(i for i in range(10) if i % 2 == 1)


class TestStaticSwitch:
    SRC = r"""
    int classify(int x) {
        switch (x) {
        case 0: return 100;
        case 1:
        case 2: return 200;
        default: return -1;
        }
    }
    """

    @pytest.mark.parametrize("opt", ["lcc", "gcc"])
    def test_compiled_switch(self, opt):
        proc = compile_c(self.SRC, static_opt=opt)
        fn = proc.static_function("classify")
        assert [fn(i) for i in range(4)] == [100, 200, 200, -1]

    def test_interpreted_switch_matches(self):
        proc = compile_c(self.SRC)
        assert [proc.run("classify", i) for i in range(4)] == \
            [100, 200, 200, -1]

    def test_switch_without_default_falls_out(self):
        src = """
        int f(int x) {
            int r;
            r = 7;
            switch (x) { case 1: r = 1; break; }
            return r;
        }
        """
        proc = compile_c(src)
        assert proc.run("f", 1) == 1
        assert proc.run("f", 2) == 7
        assert proc.static_function("f")(2) == 7

    def test_switch_requires_integer(self):
        with pytest.raises(TypeError_, match="integer"):
            compile_c("void f(double x) { switch (x) { default: ; } }")

    def test_break_outside_breakable(self):
        with pytest.raises(TypeError_, match="break"):
            compile_c("void f(void) { break; }")

    def test_continue_in_switch_outside_loop(self):
        with pytest.raises(TypeError_, match="continue"):
            compile_c(
                "void f(int x) { switch (x) { default: continue; } }"
            )


class TestSpecArrays:
    def test_cspec_array_composition(self):
        src = r"""
        int build(int n) {
            int i;
            int cspec terms[8];
            int cspec acc;
            for (i = 0; i < n; i++)
                terms[i] = `($i * $i);
            acc = `0;
            for (i = 0; i < n; i++) {
                int cspec t = terms[i];
                acc = `(acc + t);
            }
            return (int)compile(`{ return acc; }, int);
        }
        """
        proc = compile_c(src)
        fn = proc.function(proc.run("build", 6), "", "i")
        assert fn() == sum(i * i for i in range(6))

    def test_vspec_array(self):
        src = r"""
        int build(void) {
            int vspec regs[2];
            void cspec body;
            regs[0] = param(int, 0);
            regs[1] = local(int);
            {
                int vspec a = regs[0];
                int vspec t = regs[1];
                body = `{ t = a * 2; return t + 1; };
            }
            return (int)compile(body, int);
        }
        """
        proc = compile_c(src)
        fn = proc.function(proc.run("build"), "i", "i")
        assert fn(20) == 41

    def test_global_cspec_array(self):
        src = r"""
        int cspec parts[4];
        void fill(void) {
            parts[0] = `1;
            parts[1] = `2;
        }
        int build(void) {
            int cspec a = parts[0];
            int cspec b = parts[1];
            fill();
            a = parts[0];
            b = parts[1];
            return (int)compile(`(a + b), int);
        }
        """
        proc = compile_c(src)
        assert proc.function(proc.run("build"), "", "i")() == 3

    def test_out_of_range_index(self):
        src = r"""
        void f(void) {
            int cspec a[2];
            a[5] = `1;
        }
        """
        proc = compile_c(src)
        with pytest.raises(RuntimeTccError, match="out of range"):
            proc.run("f")

    def test_spec_array_not_usable_in_tick(self):
        with pytest.raises(TypeError_, match="specification time"):
            compile_c(
                "void f(void) { int cspec a[2]; "
                "void cspec c = `{ a[0]; }; }"
            )

    def test_address_of_spec_array_rejected(self):
        with pytest.raises(TypeError_, match="address"):
            compile_c(
                "void f(void) { int cspec a[2]; int *p; p = (int *)&a; }"
            )

    def test_spec_array_makes_function_uncompilable(self):
        src = """
        int uses_spec_array(void) { int cspec a[2]; return 0; }
        int pure(void) { return 1; }
        """
        proc = compile_c(src)
        names = proc.compilable_functions()
        assert "pure" in names
        assert "uses_spec_array" not in names
