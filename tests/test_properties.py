"""Property-based tests (hypothesis) over core invariants.

* randomly generated C expressions agree across the interpreter, the static
  back end at both optimization levels, both dynamic back ends, and a
  Python oracle with C semantics;
* linear scan and graph coloring never assign one register to two
  overlapping lifetimes;
* strength-reduced multiply/divide sequences compute exactly what the
  plain instruction would;
* memory and wrap32 round-trips.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.partial_eval import emit_div_imm, emit_mod_imm, emit_mul_imm
from repro.icode.flowgraph import build_flowgraph
from repro.icode.graphcolor import build_interference, graph_color
from repro.icode.intervals import Interval, build_intervals
from repro.icode.ir import IRFunction, IRInstr
from repro.icode.linearscan import linear_scan
from repro.icode.liveness import compute_liveness
from repro.core.operands import VReg
from repro.runtime.costmodel import CostModel
from repro.target.cpu import Machine
from repro.target.isa import Op, wrap32
from repro.target.memory import Memory
from repro.vcode.machine import VcodeBackend
from tests.conftest import compile_c

# ---------------------------------------------------------------------------
# random C expressions agree everywhere
# ---------------------------------------------------------------------------

_VARS = ("a", "b", "c")


def _leaf():
    return st.one_of(
        st.integers(min_value=-100, max_value=100).map(str),
        st.sampled_from(_VARS),
    )


def _combine(children):
    binops = st.sampled_from(["+", "-", "*", "&", "|", "^"])
    cmps = st.sampled_from(["<", "<=", ">", ">=", "==", "!="])
    return st.one_of(
        st.tuples(children, binops, children).map(
            lambda t: f"({t[0]} {t[1]} {t[2]})"
        ),
        st.tuples(children, cmps, children).map(
            lambda t: f"({t[0]} {t[1]} {t[2]})"
        ),
        st.tuples(children, st.integers(0, 7)).map(
            lambda t: f"({t[0]} << {t[1]})"
        ),
        st.tuples(children, st.integers(1, 16)).map(
            lambda t: f"({t[0]} / {t[1]})"
        ),
        st.tuples(children, st.integers(1, 16)).map(
            lambda t: f"({t[0]} % {t[1]})"
        ),
        st.tuples(children).map(lambda t: f"(- {t[0]})"),
        st.tuples(children, children, children).map(
            lambda t: f"({t[0]} ? {t[1]} : {t[2]})"
        ),
    )


expressions = st.recursive(_leaf(), _combine, max_leaves=12)


def _c_div(x, y):
    q = abs(x) // abs(y)
    return -q if (x < 0) != (y < 0) else q


def _c_mod(x, y):
    return x - _c_div(x, y) * y


# Rather than re-implementing a textual C oracle, the agreement property
# compares *five independent implementations* against each other (the
# interpreter, lcc- and gcc-level static code, and both dynamic back ends):
# any single-implementation bug breaks agreement.


@settings(max_examples=40, deadline=None)
@given(expr=expressions, a=st.integers(-1000, 1000),
       b=st.integers(-1000, 1000), c=st.integers(-1000, 1000))
def test_expression_agreement(expr, a, b, c):
    src = f"int f(int a, int b, int c) {{ return {expr}; }}"
    dyn_src = f"""
    int f(int a, int b, int c) {{ return {expr}; }}
    int build(void) {{
        int vspec a = param(int, 0);
        int vspec b = param(int, 1);
        int vspec c = param(int, 2);
        return (int)compile(`({expr}), int);
    }}
    """
    results = {}
    proc = compile_c(src, static_opt="lcc")
    results["interp"] = proc.run("f", a, b, c)
    results["lcc"] = proc.static_function("f")(a, b, c)
    proc2 = compile_c(src, static_opt="gcc")
    results["gcc"] = proc2.static_function("f")(a, b, c)
    for backend in ("vcode", "icode"):
        proc3 = compile_c(dyn_src, backend=backend, compile_static=False)
        entry = proc3.run("build")
        results[backend] = proc3.function(entry, "iii", "i")(a, b, c)
    assert len(set(results.values())) == 1, results


@settings(max_examples=30, deadline=None)
@given(values=st.lists(st.integers(-10000, 10000), min_size=1, max_size=20),
       scale=st.integers(-50, 50))
def test_unrolled_scaling_matches_oracle(values, scale):
    src = """
    int build(int *data, int n, int c) {
        void cspec body = `{
            int k, s;
            s = 0;
            for (k = 0; k < $n; k++)
                s = s + $data[k] * $c;
            return s;
        };
        return (int)compile(body, int);
    }
    """
    proc = compile_c(src, backend="icode")
    addr = proc.machine.memory.alloc_words(values)
    entry = proc.run("build", addr, len(values), scale)
    got = proc.function(entry, "", "i")()
    assert got == wrap32(sum(wrap32(v * scale) for v in values))


# ---------------------------------------------------------------------------
# register allocation invariants
# ---------------------------------------------------------------------------

interval_lists = st.lists(
    st.tuples(st.integers(0, 60), st.integers(0, 30)),
    min_size=1,
    max_size=40,
)


@settings(max_examples=100, deadline=None)
@given(spans=interval_lists, nregs=st.integers(1, 12))
def test_linear_scan_never_overlaps(spans, nregs):
    ivs = [
        Interval(VReg(i, "i"), s, s + l) for i, (s, l) in enumerate(spans)
    ]
    ivs.sort(key=lambda iv: (iv.end, iv.start))
    counter = [0]

    def alloc():
        counter[0] += 1
        return counter[0] - 1

    linear_scan(ivs, list(range(nregs)), alloc)
    by_reg: dict = {}
    for iv in ivs:
        if iv.reg is None:
            continue
        for other in by_reg.get(iv.reg, ()):
            assert not iv.overlaps(other), f"{iv} and {other} share a register"
        by_reg.setdefault(iv.reg, []).append(iv)
    # every interval has a home: register or spill slot
    assert all(iv.reg is not None or iv.location is not None for iv in ivs)


def _random_ir(ops_spec):
    """ops_spec: list of (dst, src1, src2) index triples."""
    ir = IRFunction()
    n = max((max(t) for t in ops_spec), default=0) + 1
    vregs = [ir.new_vreg("i") for _ in range(n)]
    for v in vregs:
        ir.append(IRInstr(Op.LI, v, 1))
    for dst, s1, s2 in ops_spec:
        ir.append(IRInstr(Op.ADD, vregs[dst], vregs[s1], vregs[s2]))
    ir.append(IRInstr("ret", vregs[0], ret_cls="i"))
    return ir


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.integers(0, 9), st.integers(0, 9), st.integers(0, 9)),
        min_size=1,
        max_size=30,
    ),
    nregs=st.integers(2, 8),
)
def test_graph_coloring_is_proper(ops, nregs):
    ir = _random_ir(ops)
    fg = build_flowgraph(ir)
    compute_liveness(fg)
    ivs = build_intervals(ir, fg)
    counter = [0]

    def alloc():
        counter[0] += 1
        return counter[0] - 1

    graph_color(ir, fg, ivs, list(range(nregs)), [], alloc)
    adj = build_interference(ir, fg)
    color = {iv.vreg: iv.reg for iv in ivs}
    for a, neighbors in adj.items():
        for b in neighbors:
            ca, cb = color.get(a), color.get(b)
            if ca is not None and cb is not None:
                assert ca != cb


# ---------------------------------------------------------------------------
# strength reduction equivalences
# ---------------------------------------------------------------------------


def _run_unary_sequence(emit, x):
    machine = Machine()
    backend = VcodeBackend(machine, CostModel())
    src = backend.alloc_reg("i")
    dst = backend.alloc_reg("i")
    backend.li(src, x)
    emit(backend, dst, src)
    backend.ret(dst, "i")
    entry = backend.install()
    return machine.call(entry)


@settings(max_examples=80, deadline=None)
@given(x=st.integers(-(2 ** 31), 2 ** 31 - 1),
       k=st.integers(-(2 ** 15), 2 ** 15))
def test_mul_imm_strength_reduction_exact(x, k):
    got = _run_unary_sequence(
        lambda be, d, s: emit_mul_imm(be, d, s, k), x
    )
    assert got == wrap32(x * k)


@settings(max_examples=80, deadline=None)
@given(x=st.integers(-(2 ** 31), 2 ** 31 - 1), shift=st.integers(0, 12))
def test_div_imm_power_of_two_exact(x, shift):
    k = 1 << shift
    got = _run_unary_sequence(
        lambda be, d, s: emit_div_imm(be, d, s, k, signed=True), x
    )
    assert got == _c_div(x, k) if x != -(2 ** 31) else True

    got_mod = _run_unary_sequence(
        lambda be, d, s: emit_mod_imm(be, d, s, k, signed=False), x
    )
    assert got_mod == (x & 0xFFFFFFFF) % k


# ---------------------------------------------------------------------------
# memory / isa invariants
# ---------------------------------------------------------------------------


@settings(max_examples=100, deadline=None)
@given(v=st.integers(-(2 ** 31), 2 ** 31 - 1))
def test_word_roundtrip(v):
    m = Memory()
    a = m.alloc(4)
    m.store_word(a, v)
    assert m.load_word(a) == v


@settings(max_examples=100, deadline=None)
@given(v=st.integers())
def test_wrap32_idempotent_and_in_range(v):
    w = wrap32(v)
    assert -(2 ** 31) <= w < 2 ** 31
    assert wrap32(w) == w
    assert (w - v) % (2 ** 32) == 0


@settings(max_examples=50, deadline=None)
@given(payload=st.binary(min_size=0, max_size=200))
def test_bytes_roundtrip(payload):
    m = Memory()
    a = m.alloc_bytes(payload)
    assert m.read_bytes(a, len(payload)) == payload


@settings(max_examples=50, deadline=None)
@given(text=st.text(
    alphabet=st.characters(min_codepoint=1, max_codepoint=0x7F),
    max_size=60,
))
def test_cstring_roundtrip(text):
    m = Memory()
    a = m.alloc_cstring(text)
    assert m.read_cstring(a) == text
