"""Unparser round-trips and CGF pretty-printing."""

import pytest

from repro import TccCompiler
from repro.core.pretty import disassemble_function, render_cgf, \
    render_program_cgfs
from repro.frontend import parse, analyze
from repro.frontend.unparse import unparse, type_name
from repro.frontend import typesys as T

ROUND_TRIP_SOURCES = [
    "int f(int a, int b) { return a * (b + 1) - a / 2; }",
    "int f(int *p, int n) { int s; s = 0; while (n--) s = s + *p++; return s; }",
    "void f(void) { int a[3] = {1, 2, 3}; a[0] = a[1] << 2; }",
    "int f(int x) { if (x > 0) return 1; else if (x < 0) return -1; return 0; }",
    "double f(double x) { return x < 0.0 ? -x : x; }",
    "int f(void) { int i, s; s = 0; for (i = 0; i < 10; i++) { if (i == 3) continue; s += i; } return s; }",
    "void f(int x) { do x = x / 2; while (x); }",
    'void f(void) { printf("%d\\n", sizeof(int)); }',
    "int f(int (*fp)(int), int x) { return fp(x); }",
    "int g; int f(void) { return (int)(char)g; }",
]

TICK_SOURCES = [
    "int build(int n) { return (int)compile(`($n + 1), int); }",
    """
    int build(int n) {
        int vspec x = param(int, 0);
        int vspec r = local(int);
        void cspec c = `{ r = x; return r * $n; };
        return (int)compile(c, int);
    }
    """,
    """
    int build(void) {
        void cspec top = make_label();
        push_init();
        push(`1);
        return (int)compile(`{ top; jump(top); }, int);
    }
    """,
]


def normalize(source):
    return unparse(analyze(parse(source)))


@pytest.mark.parametrize("source", ROUND_TRIP_SOURCES)
def test_unparse_round_trip_stable(source):
    once = normalize(source)
    twice = unparse(analyze(parse(once)))
    assert once == twice


@pytest.mark.parametrize("source", TICK_SOURCES)
def test_unparse_tick_round_trip(source):
    once = unparse(parse(source))
    twice = unparse(parse(once))
    assert once == twice


def test_unparsed_source_behaves_identically():
    src = """
    int f(int n) {
        int i, s;
        s = 0;
        for (i = 1; i <= n; i++) s = s + i * i;
        return s;
    }
    """
    tcc = TccCompiler()
    original = tcc.compile(src).start().run("f", 10)
    round_tripped_src = unparse(analyze(parse(src)))
    round_tripped = tcc.compile(round_tripped_src).start().run("f", 10)
    assert original == round_tripped == sum(i * i for i in range(11))


def test_type_names():
    assert type_name(T.INT) == "int"
    assert type_name(T.PointerType(T.CHAR)) == "char *"
    assert type_name(T.CspecType(T.VOID)) == "void cspec"
    assert type_name(T.VspecType(T.DOUBLE)) == "double vspec"
    assert "(*)" in type_name(T.PointerType(T.FunctionType(T.INT, (T.INT,))))


class TestRenderCGF:
    SRC = """
    int build(int j, int k) {
        int cspec i = `5;
        void cspec c = `{ return i + $j * k; };
        return (int)compile(c, int);
    }
    """

    def test_render_shows_closure_layout(self):
        program = TccCompiler().compile(self.SRC)
        text = render_program_cgfs(program)
        # the paper's example: i's closure holds only the CGF pointer; c's
        # also stores a run-time constant, a free variable, a nested cspec
        assert "cgf_build_0" in text and "cgf_build_1" in text
        assert "nested cspec i" in text
        assert "address of free variable k" in text
        assert "$-slot 0: evaluated at specification time" in text

    def test_render_includes_body(self):
        program = TccCompiler().compile(self.SRC)
        text = render_cgf(program.functions["build"].ticks[1].cgf)
        assert "return (i + ($j * k));" in text

    def test_disassemble_generated_function(self):
        program = TccCompiler().compile(self.SRC)
        process = program.start(backend="vcode")
        entry = process.run("build", 3, 4)
        listing = disassemble_function(process.machine, entry)
        assert "ret" in listing
        assert f"{entry:6d}:" in listing
        # the run-time constant $j was folded into the instruction stream
        fn = process.function(entry, "", "i")
        assert fn() == 5 + 3 * 4
