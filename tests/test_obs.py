"""The observability plane: SLO burn rates, the flight recorder, the
OpenMetrics exporter/endpoint, and the CLI."""

from __future__ import annotations

import json
import os
import subprocess
import sys
import urllib.request

import pytest

from repro import Engine, report
from repro.icode.backend import IcodeBackend
from repro.errors import CodegenError
from repro.obs import workload
from repro.obs.flightrec import (
    DEADLINE_BURST,
    MAX_DUMPS,
    FlightRecorder,
)
from repro.obs.openmetrics import CONTENT_TYPE, parse, render, validate
from repro.obs.server import ObsServer, attach, attached
from repro.obs.slo import (
    EXHAUSTED_RUNG,
    PAGE_RUNG,
    SloEngine,
    SloObjective,
    SloPolicy,
    default_policy,
    evaluate_registry,
)
from repro.serving import ChaosPlan
from repro.telemetry.metrics import REGISTRY, MetricsRegistry

ADDER = """
int make_adder(int n) {
    int vspec p = param(int, 0);
    int cspec c = `($n + p);
    return (int)compile(c, int);
}
"""


@pytest.fixture(autouse=True)
def _clean_registry():
    report.reset()
    yield
    report.reset()
    attach(None)


def _fill(slo, good=0, bad=0, path="hit", cycles=1):
    for _ in range(good):
        slo.observe(path, cycles, True)
    for _ in range(bad):
        slo.observe(path, cycles, False)


# -- SLO objectives and burn-rate math ----------------------------------------

class TestSloObjective:
    def test_validation(self):
        with pytest.raises(ValueError, match="kind"):
            SloObjective("x", kind="throughput")
        with pytest.raises(ValueError, match="threshold"):
            SloObjective("x", kind="latency")
        with pytest.raises(ValueError, match="target"):
            SloObjective("x", threshold=10, target=1.5)
        with pytest.raises(ValueError, match="path"):
            SloObjective("x", threshold=10, path="nope")
        with pytest.raises(ValueError, match="windows"):
            SloObjective("x", threshold=10, fast_window=99, slow_window=3)
        with pytest.raises(ValueError, match="unit"):
            SloObjective("x", threshold=10, unit="seconds")

    def test_budget_is_one_minus_target(self):
        assert SloObjective("x", threshold=5, target=0.99).budget == \
            pytest.approx(0.01)

    def test_policy_rejects_duplicate_names(self):
        with pytest.raises(ValueError, match="duplicate"):
            SloPolicy([SloObjective("a", threshold=1),
                       SloObjective("a", threshold=2)])


class TestBurnRates:
    def _latency_engine(self, **kw):
        defaults = dict(threshold=100, target=0.9, fast_window=16,
                        slow_window=64, fast_burn=5.0, slow_burn=2.0,
                        min_samples=8)
        defaults.update(kw)
        return SloEngine(SloPolicy([SloObjective("lat", **defaults)]))

    def test_all_good_is_ok_with_full_budget(self):
        slo = self._latency_engine()
        _fill(slo, good=50)
        s = slo.status().statuses[0]
        assert s.alert == "ok" and s.ok
        assert s.budget_remaining == pytest.approx(1.0)

    def test_latency_objective_scores_threshold(self):
        slo = self._latency_engine()
        slo.observe("hit", 99, True)     # within
        slo.observe("hit", 101, True)    # violating
        s = slo.status().statuses[0]
        assert (s.total, s.violations) == (2, 1)

    def test_latency_scores_only_matching_path(self):
        slo = self._latency_engine(path="hit")
        slo.observe("cold", 10**9, True)     # other path: ignored
        slo.observe("hit", 1, True)
        assert slo.status().statuses[0].total == 1

    def test_failures_do_not_count_as_latency(self):
        slo = self._latency_engine()
        slo.observe("hit", 10**9, False)
        assert slo.status().statuses[0].total == 0

    def test_acute_storm_pages_on_fast_window(self):
        # 100 clean requests keep the cumulative budget healthy; then 8
        # violations in the 16-wide fast window burn at 0.5/0.1 = 5x.
        slo = self._latency_engine()
        _fill(slo, good=100)
        _fill(slo, good=0, bad=0)
        for _ in range(8):
            slo.observe("hit", 200, True)
        s = slo.status().statuses[0]
        assert s.burn_fast >= 5.0
        assert s.alert == "page" and not s.ok

    def test_sustained_leak_warns_on_slow_window(self):
        # ~25% violations: slow burn 2.5 >= 2.0 but fast burn < 5.
        slo = self._latency_engine(slow_window=32)
        _fill(slo, good=400)
        for i in range(32):
            slo.observe("hit", 200 if i % 4 == 0 else 50, True)
        s = slo.status().statuses[0]
        assert s.alert == "warn"
        assert s.ok          # warn is a trend signal, not a breach

    def test_exhausted_budget(self):
        slo = self._latency_engine()
        _fill(slo, good=8)
        for _ in range(8):
            slo.observe("hit", 200, True)    # 50% violations vs 10% budget
        s = slo.status().statuses[0]
        assert s.alert == "exhausted"
        assert s.budget_remaining <= 0.0
        assert not slo.status().ok
        assert slo.status().exhausted == ("lat",)
        assert slo.status().worst() == "exhausted"

    def test_min_samples_suppresses_early_alerts(self):
        slo = self._latency_engine(min_samples=16)
        for _ in range(8):
            slo.observe("hit", 200, True)
        assert slo.status().statuses[0].alert == "ok"

    def test_reset_zeroes_windows(self):
        slo = self._latency_engine()
        _fill(slo, good=5, bad=0)
        slo.reset()
        s = slo.status().statuses[0]
        assert (slo.observed, s.total, s.fast_n) == (0, 0, 0)


class TestProtectiveRung:
    def _availability(self, protective=True):
        return SloEngine(SloPolicy(
            [SloObjective("avail", kind="availability", target=0.9,
                          fast_window=16, fast_burn=5.0, min_samples=8)],
            protective=protective))

    def test_monitor_only_policy_never_protects(self):
        slo = self._availability(protective=False)
        _fill(slo, bad=20)
        assert slo.protective_rung() == 0

    def test_page_floors_at_rung_one(self):
        slo = self._availability()
        _fill(slo, good=100)
        _fill(slo, bad=8)            # fast window 50% bad: page, not yet
        assert slo.status().statuses[0].alert == "page"
        assert slo.protective_rung() == PAGE_RUNG

    def test_exhausted_floors_at_rung_two(self):
        slo = self._availability()
        _fill(slo, good=8, bad=8)
        assert slo.status().statuses[0].alert == "exhausted"
        assert slo.protective_rung() == EXHAUSTED_RUNG

    def test_latency_objectives_never_protect(self):
        slo = SloEngine(SloPolicy(
            [SloObjective("lat", threshold=10, target=0.9, min_samples=4)],
            protective=True))
        for _ in range(20):
            slo.observe("hit", 100, True)
        assert slo.status().statuses[0].alert == "exhausted"
        assert slo.protective_rung() == 0

    def test_engine_degrades_before_budget_is_gone(self):
        # An availability page floors the ladder at rung 1: the request
        # is served by the conservative cold build (path "degrade")
        # while error budget remains.
        slo = self._availability()
        _fill(slo, good=100)
        _fill(slo, bad=8)
        eng = Engine(ADDER, chaos=None, slo=slo, recorder=None)
        with eng.session() as s:
            out = s.request("make_adder", (10,), call_args=(5,))
            assert out.ok and out.value == 15
            assert out.path == "degrade" and out.tier == "cold"

    def test_engine_exhausted_floors_at_vcode(self):
        slo = self._availability()
        _fill(slo, good=8, bad=8)
        eng = Engine(ADDER, chaos=None, slo=slo, recorder=None)
        with eng.session() as s:
            out = s.request("make_adder", (10,), call_args=(5,))
            assert out.ok and out.tier == "vcode"


class TestEvaluateRegistry:
    def test_histogram_mode(self):
        reg = MetricsRegistry()
        hist = reg.histogram("compile.latency.hit", (100, 1000))
        for _ in range(99):
            hist.record(50)
        hist.record(5000)                       # 1 above-threshold outlier
        reg.counter("serving.requests").inc(100)
        reg.counter("serving.failed").inc(0)
        policy = SloPolicy([
            SloObjective("hit", path="hit", threshold=1000, target=0.95),
            SloObjective("avail", kind="availability", target=0.95),
        ])
        status = evaluate_registry(policy, reg)
        assert status.ok
        hit = status.statuses[0]
        assert (hit.total, hit.violations) == (100, 1)

    def test_exhausted_from_histograms(self):
        reg = MetricsRegistry()
        hist = reg.histogram("compile.latency.hit", (100, 1000))
        for _ in range(20):
            hist.record(5000)
        policy = SloPolicy([SloObjective("hit", path="hit",
                                         threshold=1000, target=0.99)])
        status = evaluate_registry(policy, reg)
        assert status.statuses[0].alert == "exhausted"
        assert not status.ok

    def test_default_policy_on_live_traffic(self):
        eng = Engine(workload.PROGRAM)
        with eng.session() as s:
            workload.replay(s, workload.generate(60))
        status = evaluate_registry(default_policy())
        assert status.observed > 0
        assert status.ok


# -- the flight recorder ------------------------------------------------------

class TestFlightRecorder:
    def test_ring_is_bounded_and_counts_drops(self):
        rec = FlightRecorder(capacity=4, name="t")
        base = REGISTRY.counter("obs.flightrec.dropped_records").value
        for i in range(10):
            rec.record(_record_kwargs(i))
        assert len(rec) == 4
        assert rec.records()[0].index == 7     # oldest retained
        assert REGISTRY.counter(
            "obs.flightrec.dropped_records").value - base == 6

    def test_deadline_burst_trigger_fires_itself(self):
        rec = FlightRecorder(capacity=32, name="t")
        for i in range(DEADLINE_BURST):
            rec.record(_record_kwargs(i, error="DeadlineExceeded",
                                      ok=False))
        kinds = [e["kind"] for e in rec.events.snapshot()["recent"]]
        assert "deadline_burst" in kinds

    def test_unknown_trigger_kind_rejected(self):
        with pytest.raises(ValueError, match="trigger"):
            FlightRecorder(name="t").trigger("nonsense")

    def test_bundle_shape(self):
        rec = FlightRecorder(capacity=8, name="t")
        rec.record(_record_kwargs(1))
        bundle = rec.trigger("manual")
        assert bundle["recorder"] == "t"
        assert bundle["trigger"]["kind"] == "manual"
        assert bundle["records"][0]["correlation_id"] == "s#1"
        assert "serving" in bundle and "events" in bundle
        json.dumps(bundle)                      # self-contained JSON

    def test_dumps_rotate(self, tmp_path):
        rec = FlightRecorder(capacity=8, dump_dir=str(tmp_path), name="t")
        rec.record(_record_kwargs(1))
        for _ in range(MAX_DUMPS + 2):
            rec.trigger("manual")
        names = sorted(p.name for p in tmp_path.iterdir())
        assert f"blackbox-{MAX_DUMPS - 1}.json" in names
        assert f"blackbox-{MAX_DUMPS}.json" not in names
        with open(tmp_path / "blackbox-0.trace.json") as fh:
            trace = json.load(fh)
        assert any(e.get("ph") == "X" for e in trace["traceEvents"])

    def test_env_var_configures_dump_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BLACKBOX_DIR", str(tmp_path))
        assert FlightRecorder(name="t").dump_dir == str(tmp_path)

    def test_reset_clears_ring(self):
        rec = FlightRecorder(capacity=8, name="t")
        rec.record(_record_kwargs(1))
        rec.reset()
        assert len(rec) == 0 and rec.records() == []


def _record_kwargs(i, *, ok=True, error=None):
    return {
        "session": "s", "builder": "make_adder",
        "correlation_id": f"s#{i}", "ok": ok, "error": error,
        "tier": "patched", "path": "hit", "retries": 0, "cycles": 100,
        "deadline": None, "deadline_slack": None, "rungs": [0],
        "exec_engine": "block", "chaos": (), "breaker_opens": 0,
        "wall_us": 10.0, "spans": (),
    }


class TestBlackboxReconstruction:
    """Acceptance: a chaos-triggered breaker open produces a bundle
    sufficient to reconstruct the demotion after the fact."""

    N_CONTEXT = 4      # the bundle must retain at least this much tail

    def _icode_broken(self, monkeypatch):
        original = IcodeBackend.install

        def boom(self, *args, **kwargs):
            if kwargs.get("name"):
                return original(self, *args, **kwargs)
            raise CodegenError("icode wedged (test)")
        monkeypatch.setattr(IcodeBackend, "install", boom)

    def test_breaker_open_dumps_reconstructable_bundle(
            self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_BLACKBOX_DIR", str(tmp_path))
        self._icode_broken(monkeypatch)
        eng = Engine(ADDER, chaos=None)
        with eng.session(failure_threshold=2, probe_after=4) as s:
            for i in range(6):
                out = s.request("make_adder", (7,), call_args=(i,))
                assert out.ok                   # degraded, not failed
        # The recorder fired on the breaker open and dumped to disk.
        dumps = sorted(p for p in tmp_path.iterdir()
                       if p.suffix == ".json" and "trace" not in p.name)
        assert dumps, "breaker open produced no blackbox dump"
        bundles = []
        for dump in dumps:
            with open(dump) as fh:
                bundles.append(json.load(fh))
        # the richest dump (a later re-open retains the longest tail)
        bundle = max(bundles, key=lambda b: len(b["records"]))
        # 1. the trigger event identifies what fired and on which request
        assert bundle["trigger"]["kind"] == "breaker_open"
        assert bundle["trigger"]["correlation_id"].startswith("session-")
        kinds = [e["kind"] for e in bundle["events"]["recent"]]
        assert "breaker_open" in kinds
        # 2. rung transitions are reconstructable from the records: the
        # pre-open requests show the 0->1 demotion per compile, and
        # every request names its served tier.
        records = bundle["records"]
        assert any(r["rungs"] and max(r["rungs"]) >= 1 for r in records)
        assert all(r["tier"] for r in records)
        opened_at = [r for r in records if r["breaker_opens"]]
        assert opened_at, "no record carries the breaker-open edge"
        # 3. every outcome up to the trigger is present, in order — at
        # least the last N once enough requests have been served.
        assert len(records) >= min(self.N_CONTEXT,
                                   bundle["trigger"]["index"])
        assert len(records) == bundle["trigger"]["index"]
        indexes = [r["index"] for r in records]
        assert indexes == sorted(indexes)
        # 4. the live bundle agrees with the dumped one and retains the
        # whole run's tail.
        live = eng.dump_blackbox()
        assert len(live["records"]) >= self.N_CONTEXT
        shared = len(records)
        assert [r["correlation_id"] for r in live["records"]][:shared] == \
            [r["correlation_id"] for r in records]
        assert "slo" in live                    # SLO status rides along

    def test_chaos_poison_triggers_bundle(self):
        plan = ChaosPlan(at={2: "poison"})
        eng = Engine(ADDER, chaos=None)
        with eng.session(chaos=plan) as s:
            s.request("make_adder", (7,), call_args=(1,))
            s.request("make_adder", (8,), call_args=(1,))
        snap = REGISTRY.labeled("obs.flightrec.triggers").snapshot()
        assert snap.get("chaos_poison", 0) >= 1

    def test_trap_storm_triggers_once_on_pin(self):
        plan = ChaosPlan(at={1: "trap", 2: "trap", 3: "trap"})
        eng = Engine(ADDER, chaos=None)
        with eng.session(chaos=plan, failure_threshold=3,
                         probe_after=16) as s:
            for _ in range(3):
                s.request("make_adder", (10,), call_args=(5,))
            for _ in range(3):      # pinned to reference: one trigger
                out = s.request("make_adder", (10,), call_args=(5,))
                assert out.exec_engine == "reference"
        snap = REGISTRY.labeled("obs.flightrec.triggers").snapshot()
        assert snap.get("trap_storm", 0) == 1


# -- OpenMetrics exposition ---------------------------------------------------

class TestOpenMetrics:
    def test_roundtrip_of_live_registry(self):
        eng = Engine(workload.PROGRAM)
        with eng.session() as s:
            workload.replay(s, workload.generate(40))
        text = render()
        families = parse(text)
        assert validate(families) == []
        # the per-path latency family is labeled, with exemplars
        buckets = [smp for smp in
                   families["compile_latency_cycles"]["samples"]
                   if smp.name.endswith("_bucket")]
        paths = {smp.labels["path"] for smp in buckets}
        assert {"hit", "patched", "cold"} <= paths
        exemplars = [smp.exemplar for smp in buckets if smp.exemplar]
        assert exemplars, "no exemplars on the latency histograms"
        assert all(ex[0]["trace_id"] for ex in exemplars)

    def test_counter_and_eventlog_families(self):
        REGISTRY.counter("serving.requests").inc(3)
        REGISTRY.events("obs.flightrec.events").append({"kind": "manual"})
        families = parse(render())
        req = families["serving_requests"]
        assert req["type"] == "counter"
        assert req["samples"][0].value == 3
        ev = families["obs_flightrec_events"]
        assert ev["samples"][0].value >= 1
        assert "obs_flightrec_events_dropped" in families

    def test_parse_rejects_missing_eof(self):
        with pytest.raises(ValueError, match="EOF"):
            parse("# TYPE a counter\na_total 1\n")

    def test_parse_rejects_sample_before_type(self):
        with pytest.raises(ValueError, match="TYPE"):
            parse("orphan_total 1\n# EOF\n")

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError, match="unparsable"):
            parse("# TYPE a counter\n!!!\n# EOF\n")

    def test_validate_catches_non_monotone_buckets(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="1"} 5\n'
                'h_bucket{le="2"} 3\n'
                'h_bucket{le="+Inf"} 5\n'
                "h_sum 9\nh_count 5\n# EOF\n")
        problems = validate(parse(text))
        assert any("le=2.0" in p for p in problems)

    def test_validate_catches_inf_count_mismatch(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="+Inf"} 5\n'
                "h_sum 9\nh_count 7\n# EOF\n")
        problems = validate(parse(text))
        assert any("_count" in p for p in problems)

    def test_validate_catches_exemplar_out_of_bucket(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="1"} 1\n'
                'h_bucket{le="+Inf"} 1 # {trace_id="t"} 0.5\n'
                "h_sum 1\nh_count 1\n# EOF\n")
        problems = validate(parse(text))
        assert any("below its bucket range" in p for p in problems)


# -- the HTTP endpoint --------------------------------------------------------

def _get(url):
    with urllib.request.urlopen(url, timeout=5) as resp:
        return resp.status, resp.headers.get("Content-Type"), \
            resp.read().decode()


class TestObsServer:
    def test_endpoints(self):
        eng = Engine(workload.PROGRAM)
        with eng.session() as s:
            workload.replay(s, workload.generate(30))
        assert attached() is eng                  # engine self-attached
        with ObsServer(port=0) as server:
            code, ctype, body = _get(server.url + "/metrics")
            assert code == 200 and ctype == CONTENT_TYPE
            assert validate(parse(body)) == []
            code, _, body = _get(server.url + "/healthz")
            assert (code, body) == (200, "ok\n")
            code, _, body = _get(server.url + "/slo")
            slo = json.loads(body)
            assert slo["ok"] is True and slo["observed"] >= 30
            code, _, body = _get(server.url + "/blackbox")
            box = json.loads(body)
            assert len(box["records"]) == 30
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(server.url + "/nope")
            assert err.value.code == 404

    def test_slo_falls_back_to_registry_without_engine(self):
        attach(None)
        with ObsServer(port=0) as server:
            code, _, body = _get(server.url + "/slo")
            assert code == 200
            assert json.loads(body)["policy"] == "default"
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(server.url + "/blackbox")
            assert err.value.code == 404


class TestCli:
    def test_scrape_roundtrips_through_parser(self):
        env = dict(os.environ,
                   PYTHONPATH="src", REPRO_CHAOS="off")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.obs", "scrape", "--demo", "25"],
            capture_output=True, text=True, env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            timeout=120)
        assert proc.returncode == 0, proc.stderr
        families = parse(proc.stdout)
        assert validate(families) == []
        assert "compile_latency_cycles" in families
        assert families["serving_requests"]["samples"][0].value == 25


# -- report integration and reset ---------------------------------------------

class TestReportSlo:
    def test_live_engine_view(self):
        eng = Engine(workload.PROGRAM)
        with eng.session() as s:
            workload.replay(s, workload.generate(30))
        text = report.report_slo()
        assert "live engine" in text
        assert "verdict: OK" in text
        assert "availability" in text

    def test_registry_fallback_view(self):
        attach(None)
        text = report.report_slo()
        assert "registry histograms" in text

    def test_cli_subcommand(self, capsys):
        assert report.main(["slo"]) == 0
        assert "burn" in capsys.readouterr().out


class TestResetClearsThePlane:
    def test_reset_clears_slo_and_recorder(self):
        eng = Engine(workload.PROGRAM)
        with eng.session() as s:
            workload.replay(s, workload.generate(20))
        assert eng.slo.status().observed == 20
        assert len(eng.recorder) == 20
        report.reset()
        assert eng.slo.status().observed == 0
        assert len(eng.recorder) == 0
        assert eng.recorder.records() == []
        # the plane keeps working after a reset
        with eng.session() as s:
            workload.replay(s, workload.generate(5))
        assert eng.slo.status().observed == 5


# -- the workload generator ---------------------------------------------------

class TestWorkload:
    def test_deterministic_in_seed(self):
        a = workload.generate(200, seed=7)
        b = workload.generate(200, seed=7)
        assert [(r.builder, r.builder_args, r.call_args) for r in a] == \
            [(r.builder, r.builder_args, r.call_args) for r in b]
        c = workload.generate(200, seed=8)
        assert [(r.builder, r.builder_args) for r in a] != \
            [(r.builder, r.builder_args) for r in c]

    def test_class_mix_is_heavy_tailed(self):
        reqs = workload.generate(1000)
        mix = {k: sum(r.klass == k for r in reqs)
               for k in ("hot", "warm", "cold")}
        assert mix["hot"] > mix["warm"] > mix["cold"] > 0
        # the cold tail never repeats a shape
        cold = [r.builder_args for r in reqs if r.klass == "cold"]
        assert len(cold) == len(set(cold))

    def test_mix_validation(self):
        with pytest.raises(ValueError):
            workload.generate(10, hot=0.9, warm=0.3)

    def test_replay_produces_expected_paths(self):
        eng = Engine(workload.PROGRAM)
        with eng.session() as s:
            outcomes = workload.replay(s, workload.generate(80))
        assert all(o.ok for o in outcomes)
        paths = {o.path for o in outcomes}
        assert {"hit", "patched", "cold"} <= paths
