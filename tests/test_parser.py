"""Parser unit tests: declarators, expressions, statements, `C forms."""

import pytest

from repro.errors import ParseError
from repro.frontend import cast
from repro.frontend import typesys as T
from repro.frontend.parser import parse


def first_func(source):
    tu = parse(source)
    for d in tu.decls:
        if isinstance(d, cast.FuncDef):
            return d
    raise AssertionError("no function found")


def expr_of(source_expr):
    fn = first_func("void f(void) { " + source_expr + "; }")
    stmt = fn.body.stmts[0]
    assert isinstance(stmt, cast.ExprStmt)
    return stmt.expr


class TestDeclarators:
    def test_simple_int(self):
        tu = parse("int x;")
        assert tu.decls[0].ty == T.INT

    def test_pointer(self):
        tu = parse("int *p;")
        assert tu.decls[0].ty == T.PointerType(T.INT)

    def test_pointer_to_pointer(self):
        tu = parse("char **pp;")
        assert tu.decls[0].ty == T.PointerType(T.PointerType(T.CHAR))

    def test_array(self):
        tu = parse("int a[10];")
        assert tu.decls[0].ty == T.ArrayType(T.INT, 10)

    def test_array_of_pointers(self):
        tu = parse("int *a[3];")
        assert tu.decls[0].ty == T.ArrayType(T.PointerType(T.INT), 3)

    def test_pointer_to_array(self):
        tu = parse("int (*a)[3];")
        assert tu.decls[0].ty == T.PointerType(T.ArrayType(T.INT, 3))

    def test_function_pointer(self):
        tu = parse("int (*fp)(int, double);")
        ty = tu.decls[0].ty
        assert ty.is_pointer() and ty.base.is_func()
        assert ty.base.params == (T.INT, T.DOUBLE)

    def test_cspec_type(self):
        tu = parse("int cspec c;")
        assert tu.decls[0].ty == T.CspecType(T.INT)

    def test_void_cspec(self):
        tu = parse("void cspec c;")
        assert tu.decls[0].ty == T.CspecType(T.VOID)

    def test_pointer_cspec(self):
        tu = parse("int * cspec c;")
        assert tu.decls[0].ty == T.CspecType(T.PointerType(T.INT))

    def test_vspec_type(self):
        tu = parse("double vspec v;")
        assert tu.decls[0].ty == T.VspecType(T.DOUBLE)

    def test_unsigned(self):
        tu = parse("unsigned u; unsigned char b;")
        assert tu.decls[0].ty == T.UINT
        assert tu.decls[1].ty == T.UCHAR

    def test_float_becomes_double(self):
        tu = parse("float f;")
        assert tu.decls[0].ty == T.DOUBLE

    def test_const_accepted_and_ignored(self):
        tu = parse("const int x;")
        assert tu.decls[0].ty == T.INT

    def test_multiple_declarators(self):
        tu = parse("int a, *b, c[2];")
        assert [d.ty for d in tu.decls] == [
            T.INT, T.PointerType(T.INT), T.ArrayType(T.INT, 2)
        ]

    def test_constant_array_bound_expression(self):
        tu = parse("int a[4 * 2 + 1];")
        assert tu.decls[0].ty.length == 9

    def test_negative_array_size_rejected(self):
        with pytest.raises(ParseError):
            parse("int a[-1];")

    def test_function_definition_params(self):
        fn = first_func("int add(int a, int b) { return a + b; }")
        assert [p.name for p in fn.params] == ["a", "b"]
        assert fn.ty.ret == T.INT

    def test_void_param_list(self):
        fn = first_func("int f(void) { return 0; }")
        assert fn.params == []

    def test_varargs(self):
        fn = first_func("int f(int a, ...) { return a; }")
        assert fn.ty.varargs

    def test_unnamed_function_param_rejected_in_definition(self):
        with pytest.raises(ParseError):
            parse("int f(int) { return 0; }")

    def test_extern_declaration(self):
        tu = parse("int f(int x);")
        assert tu.decls[0].is_extern

    def test_array_param_decays(self):
        fn = first_func("int f(int a[10]) { return a[0]; }")
        assert fn.params[0].ty == T.PointerType(T.INT)


class TestExpressions:
    def test_precedence_mul_over_add(self):
        e = expr_of("1 + 2 * 3")
        assert isinstance(e, cast.Binary) and e.op == "+"
        assert isinstance(e.right, cast.Binary) and e.right.op == "*"

    def test_precedence_shift_vs_relational(self):
        e = expr_of("1 << 2 < 3")
        assert e.op == "<"
        assert e.left.op == "<<"

    def test_logical_precedence(self):
        e = expr_of("1 || 2 && 3")
        assert e.op == "||"
        assert e.right.op == "&&"

    def test_assignment_right_associative(self):
        fn = first_func("void f(void) { int a, b; a = b = 1; }")
        e = fn.body.stmts[1].expr
        assert isinstance(e, cast.Assign)
        assert isinstance(e.value, cast.Assign)

    def test_compound_assignment(self):
        e = expr_of("x += 2")  # parses even though x is undeclared
        assert isinstance(e, cast.Assign) and e.op == "+"

    def test_conditional_expression(self):
        e = expr_of("1 ? 2 : 3")
        assert isinstance(e, cast.Cond)

    def test_comma_expression(self):
        e = expr_of("(1, 2)")
        assert isinstance(e, cast.Comma)

    def test_cast_expression(self):
        e = expr_of("(int *)0")
        assert isinstance(e, cast.Cast)
        assert e.target_type == T.PointerType(T.INT)

    def test_sizeof_type(self):
        e = expr_of("sizeof(int)")
        assert isinstance(e, cast.SizeofType)

    def test_sizeof_expression(self):
        e = expr_of("sizeof 4")
        assert isinstance(e, cast.SizeofExpr)

    def test_unary_operators(self):
        for text, op in [("-1", "-"), ("!1", "!"), ("~1", "~")]:
            e = expr_of(text)
            assert isinstance(e, cast.Unary) and e.op == op

    def test_prefix_and_postfix_incdec(self):
        assert expr_of("++x").op == "++"
        assert expr_of("x++").op == "post++"

    def test_index_and_call_postfix(self):
        e = expr_of("f(1)[2]")
        assert isinstance(e, cast.Index)
        assert isinstance(e.base, cast.Call)

    def test_address_and_deref(self):
        e = expr_of("*&x")
        assert e.op == "*"
        assert e.operand.op == "&"

    def test_string_literal(self):
        e = expr_of('"hi"')
        assert isinstance(e, cast.StrLit) and e.value == "hi"


class TestTickAndDollar:
    def test_tick_expression(self):
        e = expr_of("`4")
        assert isinstance(e, cast.Tick)
        assert isinstance(e.body, cast.IntLit)

    def test_tick_compound(self):
        e = expr_of("`{ return 1; }")
        assert isinstance(e.body, cast.Block)

    def test_tick_binds_tightly(self):
        e = expr_of("`4 == 0")
        # the tick applies to 4, not to the comparison
        assert isinstance(e, cast.Binary)
        assert isinstance(e.left, cast.Tick)

    def test_dollar_with_postfix(self):
        e = expr_of("$row[k]")
        # $ grabs the full postfix expression row[k]
        assert isinstance(e, cast.Dollar)
        assert isinstance(e.expr, cast.Index)

    def test_parenthesized_dollar_base(self):
        e = expr_of("($row)[k]")
        assert isinstance(e, cast.Index)
        assert isinstance(e.base, cast.Dollar)

    def test_compile_form(self):
        e = expr_of("compile(c, int)")
        assert isinstance(e, cast.CompileForm)
        assert e.ret_type == T.INT

    def test_compile_form_pointer_type(self):
        e = expr_of("compile(c, char *)")
        assert e.ret_type == T.PointerType(T.CHAR)

    def test_local_form(self):
        e = expr_of("local(double)")
        assert isinstance(e, cast.LocalForm)
        assert e.var_type == T.DOUBLE

    def test_param_form(self):
        e = expr_of("param(int, 2)")
        assert isinstance(e, cast.ParamForm)

    def test_push_apply_forms(self):
        assert isinstance(expr_of("push_init()"), cast.PushInit)
        assert isinstance(expr_of("push(c)"), cast.Push)
        assert isinstance(expr_of("apply(f)"), cast.Apply)

    def test_local_requires_type(self):
        # local(x) with non-type argument is an ordinary call
        e = expr_of("local(x)")
        assert isinstance(e, cast.Call)


class TestStatements:
    def test_if_else(self):
        fn = first_func("void f(int x) { if (x) x = 1; else x = 2; }")
        stmt = fn.body.stmts[0]
        assert isinstance(stmt, cast.If)
        assert stmt.other is not None

    def test_dangling_else(self):
        fn = first_func(
            "void f(int x) { if (x) if (x > 1) x = 1; else x = 2; }"
        )
        outer = fn.body.stmts[0]
        assert outer.other is None
        assert outer.then.other is not None

    def test_while(self):
        fn = first_func("void f(int x) { while (x) x = x - 1; }")
        assert isinstance(fn.body.stmts[0], cast.While)

    def test_do_while(self):
        fn = first_func("void f(int x) { do x = x - 1; while (x); }")
        assert isinstance(fn.body.stmts[0], cast.DoWhile)

    def test_for_with_empty_parts(self):
        fn = first_func("void f(void) { for (;;) break; }")
        loop = fn.body.stmts[0]
        assert loop.init is None and loop.cond is None and loop.update is None

    def test_break_continue(self):
        fn = first_func(
            "void f(int x) { while (x) { if (x) break; continue; } }"
        )
        body = fn.body.stmts[0].body
        assert isinstance(body.stmts[0].then, cast.Break)
        assert isinstance(body.stmts[1], cast.Continue)

    def test_declaration_with_init(self):
        fn = first_func("void f(void) { int x = 5, y; }")
        decls = fn.body.stmts[0].decls
        assert decls[0].init.value == 5
        assert decls[1].init is None

    def test_array_brace_initializer(self):
        fn = first_func("void f(void) { int a[3] = {1, 2, 3}; }")
        init = fn.body.stmts[0].decls[0].init
        assert isinstance(init, list) and len(init) == 3

    def test_empty_statement(self):
        fn = first_func("void f(void) { ; }")
        assert isinstance(fn.body.stmts[0], cast.Empty)

    def test_unterminated_block(self):
        with pytest.raises(ParseError):
            parse("void f(void) { int x;")


class TestErrorsAndUnsupported:
    def test_struct_definition_parses(self):
        tu = parse("struct point { int x; int y; };")
        assert tu.decls == []  # a bare definition declares no objects

    def test_union_rejected(self):
        with pytest.raises(ParseError):
            parse("union u { int x; };")

    def test_case_outside_switch_rejected(self):
        with pytest.raises(ParseError):
            parse("void f(int x) { case 1: x = 1; }")

    def test_switch_statement_parses(self):
        fn = first_func(
            "int f(int x) { switch (x) { case 1: return 1; "
            "case 2: case 3: return 2; default: return 0; } }"
        )
        sw = fn.body.stmts[0]
        assert isinstance(sw, cast.Switch)
        assert [v for v, _ in sw.cases] == [1, 2, 3, None]

    def test_switch_duplicate_case_rejected(self):
        with pytest.raises(ParseError, match="duplicate"):
            parse("void f(int x) { switch (x) { case 1: case 1: break; } }")

    def test_switch_duplicate_default_rejected(self):
        with pytest.raises(ParseError, match="default"):
            parse(
                "void f(int x) { switch (x) { default: break; "
                "default: break; } }"
            )

    def test_goto_rejected(self):
        with pytest.raises(ParseError, match="goto"):
            parse("void f(void) { goto out; }")

    def test_typedef_rejected(self):
        with pytest.raises(ParseError, match="typedef"):
            parse("typedef int myint;")

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse("int x")

    def test_garbage_expression(self):
        with pytest.raises(ParseError):
            parse("void f(void) { 1 +; }")
