"""Runtime-support tests: arena, closures, cost model."""

import pytest

from repro.errors import RuntimeTccError
from repro.runtime.arena import Arena
from repro.runtime.closures import CaptureKind, Closure, Vspec
from repro.runtime.costmodel import CodegenStats, CostModel, Phase
from repro.target.memory import Memory


class TestArena:
    def test_tracks_allocations(self):
        a = Arena()
        a.alloc(16)
        a.alloc(8)
        assert a.allocations == 2
        assert a.bytes_allocated == 24

    def test_mark_release_restores_counters(self):
        a = Arena()
        a.alloc(8)
        a.mark()
        a.alloc(100)
        a.release()
        assert a.bytes_allocated == 8

    def test_release_without_mark(self):
        with pytest.raises(RuntimeTccError):
            Arena().release()

    def test_memory_backed_arena_returns_addresses(self):
        mem = Memory()
        a = Arena(mem)
        addr1 = a.alloc(8)
        addr2 = a.alloc(8)
        assert addr2 > addr1 > 0

    def test_memory_backed_release_reuses_space(self):
        mem = Memory()
        a = Arena(mem)
        a.mark()
        addr1 = a.alloc(32)
        a.release()
        addr2 = a.alloc(32)
        assert addr1 == addr2

    def test_negative_allocation_rejected(self):
        with pytest.raises(RuntimeTccError):
            Arena().alloc(-1)


class TestClosure:
    def test_capture_and_size(self):
        c = Closure(cgf=None, label="t")
        c.capture("fv_x", CaptureKind.FREEVAR, 0x100)
        c.capture("rc_y", CaptureKind.RTCONST, 7)
        assert c.slots["fv_x"] == 0x100
        # 4 (cgf ptr) + 4 (freevar addr) + 8 (rtconst)
        assert c.modeled_size() == 16

    def test_capture_kind_sizes(self):
        assert CaptureKind.RTCONST.modeled_bytes == 8
        assert CaptureKind.FREEVAR.modeled_bytes == 4
        assert CaptureKind.CSPEC.modeled_bytes == 4

    def test_vspec_kinds(self):
        from repro.frontend import typesys as T

        local = Vspec("local", T.INT, "i")
        par = Vspec("param", T.DOUBLE, "f", 2)
        assert local.kind == "local"
        assert par.index == 2
        with pytest.raises(ValueError):
            Vspec("bogus", T.INT, "i")


class TestCostModel:
    def test_charge_accumulates(self):
        cm = CostModel()
        cm.charge(Phase.EMIT, "instr", 3)
        weight = cm.weights[(Phase.EMIT, "instr")]
        assert cm.current.cycles[Phase.EMIT] == 3 * weight

    def test_cycles_per_instruction(self):
        cm = CostModel()
        cm.charge(Phase.EMIT, "instr", 10)
        cm.note_instruction(10)
        assert cm.current.cycles_per_instruction() == \
            cm.weights[(Phase.EMIT, "instr")]

    def test_end_instantiation_resets_current(self):
        cm = CostModel()
        cm.charge(Phase.IR, "record")
        stats = cm.end_instantiation()
        assert stats.cycles[Phase.IR] > 0
        assert cm.current.total_cycles() == 0

    def test_lifetime_accumulates_across_instantiations(self):
        cm = CostModel()
        cm.charge(Phase.IR, "record")
        cm.end_instantiation()
        cm.charge(Phase.IR, "record", 2)
        cm.end_instantiation()
        assert cm.lifetime.events[(Phase.IR, "record")] == 3

    def test_phase_breakdown_per_instruction(self):
        stats = CodegenStats()
        stats.charge(Phase.EMIT, "instr", 4)
        stats.generated_instructions = 2
        breakdown = stats.phase_breakdown()
        assert breakdown["emit"] == 2 * stats.weights[(Phase.EMIT, "instr")]

    def test_merge(self):
        a = CodegenStats()
        b = CodegenStats()
        a.charge(Phase.LINK, "patch")
        b.charge(Phase.LINK, "patch", 2)
        b.generated_instructions = 5
        a.merge(b)
        assert a.events[(Phase.LINK, "patch")] == 3
        assert a.generated_instructions == 5

    def test_zero_instructions_no_division_error(self):
        assert CodegenStats().cycles_per_instruction() == 0.0
