"""The serving engine: sessions, envelopes, breakers, and the
differential serial-vs-threads guarantee."""

from __future__ import annotations

import threading

import pytest

from repro import (
    DeadlineExceeded,
    Engine,
    RequestFailed,
    RuntimeTccError,
    report,
)
from repro.icode.backend import IcodeBackend
from repro.errors import CodegenError, CycleBudgetExceeded
from repro.serving import ChaosPlan, LADDER, RetryPolicy
from repro.serving.breaker import BreakerBoard, CircuitBreaker
from repro.serving.envelope import DeadlineClock
from repro.telemetry.metrics import REGISTRY

ADDER = """
int make_adder(int n) {
    int vspec p = param(int, 0);
    int cspec c = `($n + p);
    return (int)compile(c, int);
}
"""

PROGRAM = """
int make_adder(int n) {
    int vspec p = param(int, 0);
    int cspec c = `($n + p);
    return (int)compile(c, int);
}

int make_sum(int n) {
    int vspec x = param(int, 0);
    void cspec c = `{
        int i, s;
        s = 0;
        for (i = 0; i < $n; i++)
            s = s + x;
        return s;
    };
    return (int)compile(c, int);
}

int make_div(int d) {
    int vspec x = param(int, 0);
    return (int)compile(`(x / $d), int);
}
"""


class TestEngineSessions:
    def test_request_compiles_and_executes(self):
        with Engine(ADDER, chaos=None).session() as s:
            out = s.request("make_adder", (10,), call_args=(5,))
            assert out.ok and out.value == 15
            assert out.tier == "patched" and out.path == "cold"
            assert out.cycles > 0

    def test_tier1_hit_within_a_session(self):
        with Engine(ADDER, chaos=None).session() as s:
            s.request("make_adder", (10,), call_args=(1,))
            out = s.request("make_adder", (10,), call_args=(2,))
            assert out.path == "hit" and out.value == 12

    def test_templates_are_shared_across_sessions(self):
        eng = Engine(ADDER, chaos=None)
        with eng.session() as a:
            assert a.request("make_adder", (10,), call_args=(1,)).path == "cold"
        with eng.session() as b:
            out = b.request("make_adder", (99,), call_args=(1,))
            assert out.path == "patched" and out.value == 100
        assert eng.stats()["store"]["templates"] == 1

    def test_tier1_memo_is_not_shared_across_sessions(self):
        # Same key as session a's memo entry; session b must not get a
        # "hit" (entry addresses are machine-specific).
        eng = Engine(ADDER, chaos=None)
        with eng.session() as a:
            a.request("make_adder", (10,), call_args=(1,))
        with eng.session() as b:
            out = b.request("make_adder", (10,), call_args=(1,))
            assert out.path in ("patched", "cold")
            assert out.value == 11

    def test_sessions_do_not_share_machine_state(self):
        eng = Engine(PROGRAM, chaos=None)
        with eng.session() as a, eng.session() as b:
            ea = a.request("make_adder", (1,)).entry
            eb = b.request("make_adder", (2,)).entry
            assert a.call(ea, (10,)) == 11
            assert b.call(eb, (10,)) == 12
            assert a.process.machine is not b.process.machine

    def test_run_raises_and_request_captures(self):
        with Engine(PROGRAM, chaos=None).session() as s:
            entry = s.run("make_div", 0)    # division folded at exec time
            out = s.request("make_div", (0,), call_args=(4,))
            assert isinstance(entry, int)
            assert not out.ok               # div-by-zero trap captured
            assert out.error is not None

    def test_closed_session_refuses_requests(self):
        eng = Engine(ADDER, chaos=None)
        s = eng.open_session()
        s.close()
        s.close()                           # idempotent
        with pytest.raises(RuntimeTccError, match="closed"):
            s.request("make_adder", (1,))
        assert eng.stats()["sessions_open"] == 0


class TestDeadlines:
    def test_deadline_exceeded_is_captured(self):
        with Engine(ADDER, chaos=None).session(deadline=1) as s:
            out = s.request("make_adder", (10,), call_args=(5,))
            assert isinstance(out.error, DeadlineExceeded)

    def test_generous_deadline_passes(self):
        with Engine(ADDER, chaos=None).session(deadline=10_000_000) as s:
            out = s.request("make_adder", (10,), call_args=(5,))
            assert out.ok and out.value == 15

    def test_deadline_covers_compile_plus_execute(self):
        # Budget big enough for the compile alone but not compile+exec.
        eng = Engine(PROGRAM, chaos=None)
        with eng.session() as probe:
            full = probe.request("make_sum", (500,), call_args=(1,))
            assert full.ok and full.value == 500
        with eng.session(deadline=full.cycles // 2) as s:
            out = s.request("make_sum", (500,), call_args=(1,))
            assert isinstance(out.error, DeadlineExceeded)
            assert s.metrics.counter("serving.deadline_misses").value == 1

    def test_deadline_is_distinct_from_watchdog_fuel(self):
        # Watchdog fires (tiny fuel) while the deadline is generous: the
        # trap must surface as CycleBudgetExceeded, not a deadline.
        eng = Engine(PROGRAM, chaos=None, fuel=50)
        with eng.session(deadline=10_000_000) as s:
            out = s.request("make_sum", (100,), call_args=(1,))
            assert isinstance(out.error, CycleBudgetExceeded)

    def test_clock_validation(self):
        with pytest.raises(ValueError):
            DeadlineClock(0)
        clock = DeadlineClock(None)
        clock.charge(10**9)                 # unlimited never expires
        assert clock.remaining() is None


class TestRetries:
    def test_injected_emit_fault_is_retried(self):
        with Engine(ADDER, chaos=None).session() as s:
            s.process.machine.code.inject_emit_failure(2)
            out = s.request("make_adder", (10,), call_args=(5,))
            assert out.ok and out.value == 15
            assert out.retries >= 1
            assert s.metrics.counter("serving.retries").value >= 1

    def test_backoff_is_charged_against_the_deadline(self):
        policy = RetryPolicy(max_attempts=3, backoff_cycles=500)
        with Engine(ADDER, chaos=None).session(retry=policy) as s:
            s.process.machine.code.inject_emit_failure(2)
            out = s.request("make_adder", (10,), call_args=(5,))
            baseline = s.request("make_adder", (11,), call_args=(5,))
            assert out.retries == 1
            # one backoff of 500 cycles, plus the wasted attempt's probe
            assert out.cycles >= baseline.cycles + 500

    def test_retries_are_bounded(self):
        # A capacity clamp with no recovery defeats every rung: the
        # request must fail with RequestFailed, not loop forever.
        with Engine(ADDER, chaos=None).session() as s:
            code = s.process.machine.code
            code.limit_capacity(len(code.instructions))
            out = s.request("make_adder", (10,), call_args=(5,))
            assert isinstance(out.error, RequestFailed)
            assert out.retries >= 2


class TestDegradationLadder:
    def _icode_broken(self, monkeypatch):
        # Break only *dynamic* installs; the static compiler passes
        # name=/do_link= and must keep working so sessions can start.
        original = IcodeBackend.install

        def boom(self, *args, **kwargs):
            if kwargs.get("name"):
                return original(self, *args, **kwargs)
            raise CodegenError("icode wedged (test)")
        monkeypatch.setattr(IcodeBackend, "install", boom)

    def test_persistent_icode_failure_degrades_to_vcode(self, monkeypatch):
        self._icode_broken(monkeypatch)
        with Engine(ADDER, chaos=None).session() as s:
            out = s.request("make_adder", (10,), call_args=(5,))
            assert out.ok and out.value == 15
            assert out.tier == "vcode" and out.path == "degrade"
            deg = s.metrics.labeled("serving.degraded_by_tier").snapshot()
            assert deg.get("vcode") == 1

    def test_breaker_opens_then_probes_half_open(self, monkeypatch):
        # Breakers key on the closure *signature*, so every request must
        # hammer the same specialization (same n) to share fate.
        self._icode_broken(monkeypatch)
        eng = Engine(ADDER, chaos=None)
        with eng.session(failure_threshold=2, probe_after=2) as s:
            # Two failing requests trip the patched and cold breakers.
            s.request("make_adder", (7,), call_args=(0,))
            s.request("make_adder", (7,), call_args=(0,))
            assert s.metrics.counter("serving.breaker_opens").value >= 2
            states = s.breakers.states()
            assert any(rung == "patched" and state == "open"
                       for (key, rung), state in states.items())
            # While open, requests go straight to vcode without paying
            # for doomed icode attempts.
            out = s.request("make_adder", (7,), call_args=(0,))
            assert out.ok and out.tier == "vcode" and out.retries == 0
            # Heal icode; after the cool-off the half-open probe succeeds
            # and the breaker closes again.
            monkeypatch.undo()
            for _ in range(6):
                out = s.request("make_adder", (7,), call_args=(0,))
                assert out.ok and out.value == 7
            assert out.tier == "patched"
            states = s.breakers.states()
            assert any(rung == "patched" and state == "closed"
                       for (key, rung), state in states.items())

    def test_full_ladder_exhaustion_reports_request_failed(self):
        with Engine(ADDER, chaos=None).session() as s:
            code = s.process.machine.code
            code.limit_capacity(len(code.instructions))
            out = s.request("make_adder", (10,), call_args=(5,))
            assert isinstance(out.error, RequestFailed)
            assert out.error.tier == LADDER[-1]

    def test_trap_storm_pins_execution_to_reference(self):
        plan = ChaosPlan(at={1: "trap", 2: "trap", 3: "trap"})
        eng = Engine(ADDER, chaos=None)
        with eng.session(chaos=plan, failure_threshold=3,
                         probe_after=3) as s:
            for _ in range(3):
                out = s.request("make_adder", (10,), call_args=(5,))
                assert isinstance(out.error, CycleBudgetExceeded)
            # Breaker open: the next (chaos-free) request executes on the
            # reference stepper with the block cache distrusted.
            out = s.request("make_adder", (10,), call_args=(5,))
            assert out.ok and out.value == 15
            assert out.exec_engine == "reference"
            assert out.tier == "reference"
            deg = s.metrics.labeled("serving.degraded_by_tier").snapshot()
            assert deg.get("reference", 0) >= 1


class TestBreakerUnit:
    def test_threshold_and_probe_cycle(self):
        b = CircuitBreaker(failure_threshold=2, probe_after=2)
        assert b.allow()
        assert not b.record_failure()
        assert b.record_failure()           # opens
        assert b.state == "open"
        assert not b.allow()                # cool-off 1
        assert not b.allow()                # cool-off 2 -> half-open
        assert b.state == "half-open"
        assert b.allow()                    # the probe
        assert b.record_failure()           # probe failed -> re-open
        assert b.state == "open"
        assert not b.allow() and not b.allow()
        assert b.allow()                    # next probe
        b.record_success()
        assert b.state == "closed" and b.failures == 0
        assert b.opened_count == 2

    def test_board_routes_per_key(self):
        board = BreakerBoard(failure_threshold=1, probe_after=2)
        for _ in range(1):
            board.breaker("k1", 0).record_failure()
        assert board.start_rung("k1") == 1   # k1's rung 0 is open
        assert board.start_rung("k2") == 0   # k2 unaffected
        assert board.open_count() == 1


class TestTelemetryRollup:
    def test_session_metrics_merge_on_close(self):
        base = REGISTRY.counter("serving.requests").value
        eng = Engine(ADDER, chaos=None)
        s = eng.open_session()
        s.request("make_adder", (10,), call_args=(5,))
        s.request("make_adder", (10,), call_args=(6,))
        # Not rolled up yet...
        assert REGISTRY.counter("serving.requests").value == base
        assert s.metrics.counter("serving.requests").value == 2
        s.close()
        assert REGISTRY.counter("serving.requests").value == base + 2

    def test_engine_stats_shape(self):
        eng = Engine(ADDER, chaos=None)
        with eng.session() as s:
            s.request("make_adder", (1,), call_args=(1,))
            stats = eng.stats()
            assert stats["sessions_open"] == 1
            assert set(report.serving_stats()) >= {
                "requests", "completed", "failed", "retries",
                "deadline_misses", "breaker_opens", "degraded",
            }


WORKLOAD = [
    ("make_adder", (10,), (5,)),
    ("make_adder", (10,), (6,)),     # tier-1 hit
    ("make_adder", (11,), (6,)),     # tier-2 patch
    ("make_sum", (50,), (2,)),
    ("make_div", (0,), (4,)),        # trap: div by zero at exec
    ("make_sum", (50,), (3,)),       # hit
    ("make_adder", (12,), (1,)),
    ("make_div", (2,), (9,)),
]


def _replay(session):
    """Run the canonical workload; return a comparable fingerprint."""
    results = []
    for builder, bargs, cargs in WORKLOAD:
        out = session.request(builder, bargs, call_args=cargs)
        results.append((
            out.value,
            type(out.error).__name__ if out.error else None,
            out.tier,
            out.path,
            out.retries,
            out.cycles,
        ))
    return results


class TestDifferential:
    N_THREADS = 8

    def test_threads_match_serial_bit_for_bit(self):
        """N sessions replaying the identical workload concurrently must
        produce results — values, modeled cycles, compile paths, traps —
        identical to a serial replay.  Template sharing is off so every
        session is a self-contained replica of the serial baseline."""
        serial = _replay(
            Engine(PROGRAM, share_templates=False).open_session())
        eng = Engine(PROGRAM, share_templates=False)
        results = [None] * self.N_THREADS
        errors = []

        def client(i):
            try:
                with eng.session() as s:
                    results[i] = _replay(s)
            except BaseException as exc:       # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(self.N_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for i, got in enumerate(results):
            assert got == serial, f"thread {i} diverged from serial replay"

    def test_threads_with_shared_store_agree_on_results(self):
        """With the shared template store on, compile *paths* may differ
        (whoever compiles first donates the template) but every value and
        trap must still match the serial baseline."""
        serial = _replay(Engine(PROGRAM, chaos=None).open_session())
        want = [(v, e) for v, e, *_ in serial]
        eng = Engine(PROGRAM, chaos=None)
        results = [None] * self.N_THREADS
        errors = []

        def client(i):
            try:
                with eng.session() as s:
                    results[i] = [(v, e) for v, e, *_ in _replay(s)]
            except BaseException as exc:       # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(self.N_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for got in results:
            assert got == want
