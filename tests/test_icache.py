"""Instruction-cache model tests."""

import pytest

from repro.target.cpu import ICache, Machine
from repro.target.isa import Instruction, Op, Reg
from repro.target.program import Label


def straightline_machine(n_instrs: int, icache):
    machine = Machine(icache=icache)
    body = [Instruction(Op.ADDI, Reg.RV, Reg.RV, 1) for _ in range(n_instrs)]
    body.append(Instruction(Op.RET))
    entry = machine.code.extend(body)
    machine.code.link()
    return machine, entry


class TestICacheModel:
    def test_configuration_validation(self):
        with pytest.raises(ValueError):
            ICache(line_bytes=6)
        with pytest.raises(ValueError):
            ICache(line_bytes=24)  # 6 instructions: not a power of two

    def test_cold_misses_counted(self):
        cache = ICache(size_bytes=1024, line_bytes=32)
        machine, entry = straightline_machine(64, cache)
        machine.call(entry)
        # 65 instructions + halt across 8-instruction lines
        assert cache.misses >= 64 // 8
        assert cache.accesses >= 64

    def test_warm_run_hits(self):
        cache = ICache()
        machine, entry = straightline_machine(64, cache)
        machine.call(entry)
        cold = cache.misses
        machine.call(entry)
        assert cache.misses == cold  # everything resident

    def test_capacity_misses_when_code_exceeds_cache(self):
        cache = ICache(size_bytes=256, line_bytes=32)  # 8 lines
        machine, entry = straightline_machine(256, cache)
        machine.call(entry)
        cold = cache.misses
        machine.call(entry)
        assert cache.misses > cold  # the stream evicts itself

    def test_miss_penalty_charged(self):
        ideal_machine, entry = straightline_machine(64, None)
        ideal_machine.call(entry)
        ideal = ideal_machine.cpu.cycles

        cache = ICache(miss_penalty=10)
        cached_machine, entry2 = straightline_machine(64, cache)
        cached_machine.call(entry2)
        assert cached_machine.cpu.cycles == ideal + 10 * cache.misses

    def test_flush(self):
        cache = ICache()
        machine, entry = straightline_machine(32, cache)
        machine.call(entry)
        cold = cache.misses
        cache.flush()
        machine.call(entry)
        assert cache.misses >= 2 * cold

    def test_loop_stays_resident(self):
        cache = ICache(size_bytes=1024)
        machine = Machine(icache=cache)
        top = Label()
        machine.code.emit(Instruction(Op.LI, Reg.T0, 1000))
        top.address = machine.code.here
        entry = 1
        machine.code.extend([
            Instruction(Op.SUBI, Reg.T0, Reg.T0, 1),
            Instruction(Op.BNEZ, Reg.T0, top),
            Instruction(Op.RET),
        ])
        machine.code.link()
        machine.call(entry)
        assert cache.misses <= 4  # the whole loop is one or two lines
