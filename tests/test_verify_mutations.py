"""Mutation self-test for the verifier suite (repro.verify).

Each test plants one deliberate defect — a buggy `C program, a malformed
IR function, a sabotaged register allocator, or corrupted installed code —
and asserts that the layer *designed* to catch it does catch it, with the
expected rule.  This is the evidence that every layer actually pulls its
weight: delete a check and its mutation test goes red.
"""

from __future__ import annotations

import pytest

from repro import TccCompiler
from repro.core.codecache import CodeCache
from repro.errors import VerifyError
from repro.icode.ir import IRFunction, IRInstr
from repro.target.isa import ALLOCATABLE_REGS, Instruction, Op
from repro.target.program import Label
from repro.verify import codeaudit, ircheck
from tests.conftest import compile_c


def _lint(source: str):
    """Static-compile under dev mode; returns the raised VerifyError."""
    with pytest.raises(VerifyError) as err:
        TccCompiler(verify="dev").compile(source)
    return err.value


def _rules(err: VerifyError):
    return {d.rule for d in err.diagnostics}


# ---------------------------------------------------------------------------
# Layer 1: tick lint (static compile time)
# ---------------------------------------------------------------------------


class TestTicklintMutations:
    def test_vspec_use_before_bind(self):
        err = _lint("""
        int build(void) {
            int vspec v;
            int cspec c = `(v + 1);
            return (int)compile(c, int);
        }
        """)
        assert err.layer == "ticklint"
        assert "vspec-use-before-bind" in _rules(err)

    def test_cspec_use_before_specify(self):
        err = _lint("""
        int build(void) {
            int cspec c;
            int cspec d = `(c + 1);
            return (int)compile(d, int);
        }
        """)
        assert err.layer == "ticklint"
        assert "cspec-use-before-specify" in _rules(err)

    def test_cspec_composition_cycle(self):
        err = _lint("""
        int build(void) {
            int cspec c;
            c = `(c + 1);
            return (int)compile(c, int);
        }
        """)
        assert err.layer == "ticklint"
        assert "cspec-composition-cycle" in _rules(err)

    def test_duplicate_param_index(self):
        err = _lint("""
        int build(void) {
            int vspec a = param(int, 0);
            int vspec b = param(int, 0);
            return (int)compile(`(a + b), int);
        }
        """)
        assert err.layer == "ticklint"
        assert "param-index-rebound" in _rules(err)

    def test_dollar_with_side_effect(self):
        err = _lint("""
        int build(int n) {
            return (int)compile(`($(n = n + 1) + 2), int);
        }
        """)
        assert err.layer == "ticklint"
        assert "dollar-side-effect" in _rules(err)

    def test_freevar_captured_past_extent(self):
        err = _lint("""
        int cspec leak(void) {
            int x;
            x = 1;
            return `(x + 1);
        }
        int build(void) {
            return (int)compile(leak(), int);
        }
        """)
        assert err.layer == "ticklint"
        assert "freevar-escape" in _rules(err)


# ---------------------------------------------------------------------------
# Layer 2: inter-pass IR verifier
# ---------------------------------------------------------------------------


def _expect_ircheck(ir, rule: str):
    with pytest.raises(VerifyError) as err:
        ircheck.run_ir(ir, "mutation")
    assert err.value.layer == "ircheck"
    assert rule in _rules(err.value)


class TestIrcheckMutations:
    def test_wrong_register_class(self):
        ir = IRFunction()
        a, b, c = (ir.new_vreg("i") for _ in range(3))
        ir.append(IRInstr(Op.LI, b, 1))
        ir.append(IRInstr(Op.LI, c, 2))
        ir.append(IRInstr(Op.FADD, a, b, c))  # float op on int vregs
        ir.append(IRInstr("ret", a, ret_cls="i"))
        _expect_ircheck(ir, "operand-class")

    def test_branch_to_unplaced_label(self):
        ir = IRFunction()
        ir.append(IRInstr(Op.JMP, Label()))  # never placed
        _expect_ircheck(ir, "unplaced-label")

    def test_label_placed_twice(self):
        ir = IRFunction()
        top = Label()
        ir.append(IRInstr("label", top))
        ir.append(IRInstr("label", top))
        ir.append(IRInstr(Op.JMP, top))
        _expect_ircheck(ir, "duplicate-label")

    def test_use_of_undefined_vreg(self):
        ir = IRFunction()
        a, ghost = ir.new_vreg("i"), ir.new_vreg("i")
        ir.append(IRInstr(Op.MOV, a, ghost))  # ghost is never defined
        ir.append(IRInstr("ret", a, ret_cls="i"))
        _expect_ircheck(ir, "undefined-vreg")

    def test_malformed_immediate_operand(self):
        ir = IRFunction()
        a = ir.new_vreg("i")
        ir.append(IRInstr(Op.LI, a, "forty-two"))  # not an int
        ir.append(IRInstr("ret", a, ret_cls="i"))
        _expect_ircheck(ir, "bad-operand")


# ---------------------------------------------------------------------------
# Layer 3: allocation checker (sabotaged allocators, end to end)
# ---------------------------------------------------------------------------

PRESSURE_SRC = """
int build(void) {
    int vspec a = param(int, 0);
    int vspec b = param(int, 1);
    return (int)compile(`((a + b) * (a - b)), int);
}
"""

CALL_SRC = """
int sq(int x) { return x * x; }
int build(void) {
    int vspec p = param(int, 0);
    return (int)compile(`(p + sq(p)), int);
}
"""


def _expect_regcheck(monkeypatch, source, allocator, rule):
    # Start the process (static compile included) with the real allocator;
    # only the dynamic compile runs under the sabotaged one.
    proc = compile_c(source, backend="icode", verify="dev", fallback=False)
    monkeypatch.setattr("repro.icode.backend.linear_scan", allocator)
    with pytest.raises(VerifyError) as err:
        proc.run("build")
    assert err.value.layer == "regcheck"
    assert rule in _rules(err.value)


class TestRegcheckMutations:
    def test_aliased_registers(self, monkeypatch):
        def alias_everything(intervals, regs, slot_alloc, *a, **kw):
            for iv in intervals:
                iv.reg = int(ALLOCATABLE_REGS[0])
            return 0

        _expect_regcheck(monkeypatch, PRESSURE_SRC, alias_everything,
                         "register-aliasing")

    def test_overlapping_spill_slots(self, monkeypatch):
        def one_slot_for_all(intervals, regs, slot_alloc, *a, **kw):
            for iv in intervals:
                iv.reg = None
                iv.location = 0
            return len(intervals)

        _expect_regcheck(monkeypatch, PRESSURE_SRC, one_slot_for_all,
                         "spill-slot-overlap")

    def test_caller_saved_across_call(self, monkeypatch):
        def caller_saved_regs(intervals, regs, slot_alloc, *a, **kw):
            for i, iv in enumerate(intervals):
                iv.reg = 4 + i  # a0, a1, ... clobbered by any callee
            return 0

        _expect_regcheck(monkeypatch, CALL_SRC, caller_saved_regs,
                         "caller-saved-across-call")


# ---------------------------------------------------------------------------
# Layer 4: install-time code audit
# ---------------------------------------------------------------------------


def _installed_process():
    """A working dynamic function, compiled with verification off so the
    mutations below are the first audit the code ever sees."""
    proc = compile_c(
        "int build(void) { return (int)compile(`(6 * 7), int); }",
        backend="icode", verify="off")
    entry = proc.run("build")
    return proc, entry


def _expect_codeaudit(proc, start, rule):
    with pytest.raises(VerifyError) as err:
        codeaudit.run_range(proc.machine, start,
                            len(proc.machine.code.instructions),
                            where="mutation")
    assert err.value.layer == "codeaudit"
    assert rule in _rules(err.value)


class TestCodeauditMutations:
    def test_branch_out_of_segment(self):
        proc, entry = _installed_process()
        proc.machine.code.instructions[entry] = Instruction(Op.JMP, 10**6)
        _expect_codeaudit(proc, entry, "branch-out-of-segment")

    def test_write_to_zero_register(self):
        proc, entry = _installed_process()
        proc.machine.code.instructions[entry] = Instruction(Op.LI, 0, 42)
        _expect_codeaudit(proc, entry, "zero-write")

    def test_hostcall_index_out_of_table(self):
        proc, entry = _installed_process()
        proc.machine.code.instructions[entry] = Instruction(Op.HOSTCALL, 999)
        _expect_codeaudit(proc, entry, "bad-hostcall-index")

    def test_unresolved_operand_survives_linking(self):
        proc, entry = _installed_process()
        proc.machine.code.instructions[entry] = Instruction(
            Op.JMP, Label())
        _expect_codeaudit(proc, entry, "unresolved-operand")

    def test_mispatched_template(self, monkeypatch):
        src = """
        int build(int n) {
            int vspec p = param(int, 0);
            return (int)compile(`(p + $n), int);
        }
        """
        original = CodeCache.instantiate_template

        def skip_one_patch(self, template, signature, machine, cost):
            entry = original(self, template, signature, machine, cost)
            if template.holes:
                rel, field = template.holes[0][0], template.holes[0][1]
                old = machine.code.instructions[entry + rel]
                vals = {"a": old.a, "b": old.b, "c": old.c}
                vals[field] = (vals[field] or 0) + 1
                machine.code.instructions[entry + rel] = Instruction(
                    old.op, vals["a"], vals["b"], vals["c"])
            return entry

        monkeypatch.setattr(CodeCache, "instantiate_template",
                            skip_one_patch)
        proc = compile_c(src, backend="icode", verify="dev")
        proc.run("build", 10)  # cold: captures a template
        with pytest.raises(VerifyError) as err:
            proc.run("build", 42)  # Tier-2 clone with a sabotaged hole
        assert err.value.layer == "codeaudit"
        assert "mispatched-template" in _rules(err.value)
