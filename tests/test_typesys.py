"""Type-system unit tests."""

import pytest

from repro.errors import TypeError_
from repro.frontend import typesys as T


class TestBasics:
    def test_sizes(self):
        assert T.INT.size == 4
        assert T.CHAR.size == 1
        assert T.DOUBLE.size == 8
        assert T.PointerType(T.DOUBLE).size == 4
        assert T.ArrayType(T.INT, 10).size == 40

    def test_predicates(self):
        assert T.INT.is_integer() and T.INT.is_arith() and T.INT.is_scalar()
        assert T.DOUBLE.is_float() and not T.DOUBLE.is_integer()
        assert T.VOID.is_void() and not T.VOID.is_scalar()
        assert T.PointerType(T.INT).is_scalar()
        assert not T.ArrayType(T.INT, 2).is_scalar()

    def test_equality_structural(self):
        assert T.PointerType(T.INT) == T.PointerType(T.INT)
        assert T.PointerType(T.INT) != T.PointerType(T.CHAR)
        assert T.ArrayType(T.INT, 3) != T.ArrayType(T.INT, 4)
        assert T.CspecType(T.INT) == T.CspecType(T.INT)
        assert T.CspecType(T.INT) != T.VspecType(T.INT)

    def test_struct_identity_not_structural(self):
        a = T.StructType("p")
        b = T.StructType("p")
        a.define([("x", T.INT)])
        b.define([("x", T.INT)])
        assert a != b
        assert a == a

    def test_function_type_str(self):
        f = T.FunctionType(T.INT, (T.INT, T.DOUBLE), varargs=True)
        assert "..." in str(f)

    def test_hashable(self):
        types = {T.INT, T.UINT, T.PointerType(T.INT), T.CspecType(T.VOID)}
        assert len(types) == 4


class TestConversions:
    def test_promotion(self):
        assert T.promote(T.CHAR) == T.INT
        assert T.promote(T.UCHAR) == T.INT
        assert T.promote(T.INT) == T.INT

    def test_usual_arith_float_wins(self):
        assert T.usual_arith(T.INT, T.DOUBLE) == T.DOUBLE

    def test_usual_arith_unsigned_wins(self):
        assert T.usual_arith(T.INT, T.UINT) == T.UINT

    def test_usual_arith_chars_promote(self):
        assert T.usual_arith(T.CHAR, T.CHAR) == T.INT

    def test_usual_arith_rejects_pointers(self):
        with pytest.raises(TypeError_):
            T.usual_arith(T.PointerType(T.INT), T.INT)

    def test_decay(self):
        assert T.decay(T.ArrayType(T.INT, 5)) == T.PointerType(T.INT)
        fn = T.FunctionType(T.VOID, ())
        assert T.decay(fn) == T.PointerType(fn)
        assert T.decay(T.INT) == T.INT


class TestAssignable:
    def test_arith_cross_assign(self):
        assert T.assignable(T.DOUBLE, T.INT)
        assert T.assignable(T.INT, T.DOUBLE)
        assert T.assignable(T.CHAR, T.INT)

    def test_pointer_rules(self):
        ip = T.PointerType(T.INT)
        cp = T.PointerType(T.CHAR)
        vp = T.VOID_PTR
        assert T.assignable(ip, ip)
        assert not T.assignable(ip, cp)
        assert T.assignable(ip, vp) and T.assignable(vp, cp)

    def test_array_decays_on_assign(self):
        assert T.assignable(T.PointerType(T.INT), T.ArrayType(T.INT, 4))

    def test_int_pointer_mixing_tolerated(self):
        assert T.assignable(T.PointerType(T.INT), T.INT)
        assert T.assignable(T.INT, T.PointerType(T.INT))

    def test_spec_types(self):
        assert T.assignable(T.CspecType(T.INT), T.CspecType(T.INT))
        assert not T.assignable(T.CspecType(T.INT), T.CspecType(T.DOUBLE))
        assert not T.assignable(T.CspecType(T.INT), T.INT)

    def test_struct_assign_same_tag_only(self):
        a = T.StructType("a")
        a.define([("x", T.INT)])
        b = T.StructType("b")
        b.define([("x", T.INT)])
        assert T.assignable(a, a)
        assert not T.assignable(a, b)


class TestSizeof:
    def test_plain(self):
        assert T.sizeof(T.INT) == 4

    def test_incomplete_array_rejected(self):
        with pytest.raises(TypeError_, match="incomplete"):
            T.sizeof(T.ArrayType(T.INT, None))

    def test_void_rejected(self):
        with pytest.raises(TypeError_):
            T.sizeof(T.VOID)

    def test_incomplete_struct_rejected(self):
        s = T.StructType("later")
        with pytest.raises(TypeError_, match="incomplete"):
            T.sizeof(s)

    def test_function_rejected(self):
        with pytest.raises(TypeError_):
            T.sizeof(T.FunctionType(T.INT, ()))

    def test_storage_kind(self):
        assert T.storage_kind(T.DOUBLE) == "f"
        assert T.storage_kind(T.INT) == "i"
        assert T.storage_kind(T.PointerType(T.DOUBLE)) == "i"


class TestStructLayoutUnit:
    def test_empty_until_defined(self):
        s = T.StructType("pending")
        assert not s.complete
        s.define([("a", T.CHAR), ("b", T.CHAR)])
        assert s.complete and s.size == 2 and s.align == 1

    def test_redefine_rejected(self):
        s = T.StructType("once")
        s.define([("a", T.INT)])
        with pytest.raises(TypeError_, match="redefinition"):
            s.define([("b", T.INT)])

    def test_field_lookup_miss(self):
        s = T.StructType("p")
        s.define([("a", T.INT)])
        assert s.field("nope") is None
