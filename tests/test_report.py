"""Smoke tests for the repro.report CLI (the cheap reports only; the
expensive figures are exercised by benchmarks/)."""

import pytest

from repro import report
from repro.target.cpu import Machine
from repro.target.isa import Instruction, Op, Reg


def test_usedops_report_renders():
    text = report.report_usedops()
    assert "pruned" in text
    for name in ("hash", "dp", "blur"):
        assert name in text


def test_table1_report_renders():
    text = report.report_table1()
    assert "one large cspec, dynamic locals" in text
    assert "VCODE" in text and "ICODE" in text


def test_main_rejects_unknown_report(capsys):
    assert report.main(["nonsense"]) == 1
    assert "Usage" in capsys.readouterr().out or True


def test_main_runs_named_report(capsys):
    assert report.main(["usedops"]) == 0
    out = capsys.readouterr().out
    assert "reduction" in out or "pruned" in out


def test_reset_clears_dispatch_counters():
    """report.reset() must zero the block-dispatch counters too, or one
    benchmark's fusion/cache numbers bleed into the next."""
    report.reset()
    machine = Machine()                    # block engine is the default
    entry = machine.code.extend([
        Instruction(Op.LI, Reg.RV, 5),
        Instruction(Op.RET),
    ])
    machine.code.link()
    assert machine.call(entry) == 5

    stats = report.dispatch_stats()
    assert stats["blocks_compiled"] >= 1
    assert stats["instructions_predecoded"] >= 2
    assert stats["block_dispatches"] >= 1

    report.reset()
    stats = report.dispatch_stats()
    assert all(v == 0 for k, v in stats.items() if k != "fused_by_kind")
    assert stats["fused_by_kind"] == {}


def test_reset_clears_verify_counters():
    """report.reset() must zero the VERIFY_STATS counters too, or one
    benchmark's diagnostic/timing numbers bleed into the next."""
    report.reset()
    report.record_verify("ticklint", 0, 0.25)
    report.record_verify("regcheck", 3, 0.5)

    stats = report.verify_stats()
    assert stats["checks_run"] == 2
    assert stats["diagnostics"]["regcheck"] == 3
    assert stats["diagnostics"]["ticklint"] == 0
    assert stats["time_seconds"] == pytest.approx(0.75)

    report.reset()
    stats = report.verify_stats()
    assert stats["checks_run"] == 0
    assert all(n == 0 for n in stats["diagnostics"].values())
    assert stats["time_seconds"] == 0.0


def test_reset_runs_registered_hooks():
    """report.reset() must clear state living outside the registry too
    (SLO windows, flight-recorder rings) via registered hooks."""
    calls = []

    def hook():
        calls.append(1)

    report.register_reset_hook(hook)
    report.register_reset_hook(hook)       # idempotent registration
    try:
        report.reset()
        assert calls == [1]
    finally:
        report._RESET_HOOKS.remove(hook)


def test_reset_clears_observability_plane():
    """The obs plane's hook wipes live SLO windows and recorder rings."""
    from repro.obs.flightrec import FlightRecorder
    from repro.obs.slo import SloEngine, default_policy

    slo = SloEngine(default_policy())
    rec = FlightRecorder(capacity=8, name="t")
    slo.observe("hit", 1, True)
    rec.record({
        "session": "s", "builder": "b", "correlation_id": "s#1",
        "ok": True, "error": None, "tier": "patched", "path": "hit",
        "retries": 0, "cycles": 1, "deadline": None,
        "deadline_slack": None, "rungs": [0], "exec_engine": "block",
        "chaos": (), "breaker_opens": 0, "wall_us": 1.0, "spans": (),
    })
    assert slo.observed == 1 and len(rec) == 1
    report.reset()
    assert slo.observed == 0 and len(rec) == 0
