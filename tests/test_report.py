"""Smoke tests for the repro.report CLI (the cheap reports only; the
expensive figures are exercised by benchmarks/)."""

import pytest

from repro import report


def test_usedops_report_renders():
    text = report.report_usedops()
    assert "pruned" in text
    for name in ("hash", "dp", "blur"):
        assert name in text


def test_table1_report_renders():
    text = report.report_table1()
    assert "one large cspec, dynamic locals" in text
    assert "VCODE" in text and "ICODE" in text


def test_main_rejects_unknown_report(capsys):
    assert report.main(["nonsense"]) == 1
    assert "Usage" in capsys.readouterr().out or True


def test_main_runs_named_report(capsys):
    assert report.main(["usedops"]) == 0
    out = capsys.readouterr().out
    assert "reduction" in out or "pruned" in out
