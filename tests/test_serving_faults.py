"""The chaos matrix: every fault class crossed with every serving path,
plus the no-cross-session-corruption guarantee.

Documented landing spots (see repro/serving/chaos.py):

================  =====================================================
fault class       expected outcome
================  =====================================================
``emit_fault``    transient — request succeeds (retry or in-attempt
                  recovery), value correct
``exhaust``       transient — rollback listener restores capacity,
                  request succeeds
``alloc_fault``   transient — request succeeds
``poison``        tampered template evicted by the integrity check,
                  request succeeds via a cold recompile
``deadline``      request fails with DeadlineExceeded, session survives
``trap``          request fails with CycleBudgetExceeded, session
                  survives
``poison_trace``  a formed trace is poisoned; its next dispatch deopts
                  back to superblocks with bit-identical results —
                  request succeeds (a no-op before any trace exists)
``corrupt_disk``  a persisted code-cache entry is tampered with; the
                  sha256 digest rejects it at load and the request is
                  served by a cold compile (a no-op when no
                  ``codecache_dir`` is configured, as here)
================  =====================================================
"""

from __future__ import annotations

import threading

import pytest

from repro import DeadlineExceeded, Engine, report
from repro.errors import CycleBudgetExceeded
from repro.serving import ChaosPlan, chaos_matrix
from repro.serving.chaos import KINDS, from_env
from repro.telemetry.metrics import REGISTRY

ADDER = """
int make_adder(int n) {
    int vspec p = param(int, 0);
    int cspec c = `($n + p);
    return (int)compile(c, int);
}
"""

#: kind -> (request succeeds?, error type when not)
EXPECT = {
    "emit_fault": (True, None),
    "exhaust": (True, None),
    "alloc_fault": (True, None),
    "poison": (True, None),
    "deadline": (False, DeadlineExceeded),
    "trap": (False, CycleBudgetExceeded),
    "poison_trace": (True, None),
    "corrupt_disk": (True, None),
}

MATRIX = dict(chaos_matrix())


def _check(kind, out, want_value):
    succeeds, error_type = EXPECT[kind]
    if succeeds:
        assert out.ok, f"{kind}: expected recovery, got {out.error!r}"
        assert out.value == want_value
    else:
        assert isinstance(out.error, error_type), \
            f"{kind}: expected {error_type.__name__}, got {out.error!r}"


class TestChaosMatrix:
    @pytest.mark.parametrize("kind", KINDS)
    def test_cold_path(self, kind):
        """Fault injected right before the session's first (cold) compile."""
        eng = Engine(ADDER, chaos=None)
        with eng.session(chaos=MATRIX[kind]) as s:
            out = s.request("make_adder", (10,), call_args=(5,))
            _check(kind, out, 15)
            assert s.metrics.labeled("chaos.injected").snapshot() == {kind: 1}
            # The session must survive the fault: the next, chaos-free
            # request is served normally.
            again = s.request("make_adder", (20,), call_args=(5,))
            assert again.ok and again.value == 25

    @pytest.mark.parametrize("kind", KINDS)
    def test_hit_path(self, kind):
        """Fault injected before a request served from the Tier-1 memo."""
        eng = Engine(ADDER, chaos=None)
        plan = ChaosPlan(at={2: kind})
        with eng.session(chaos=plan) as s:
            first = s.request("make_adder", (10,), call_args=(1,))
            assert first.ok and first.path == "cold"
            out = s.request("make_adder", (10,), call_args=(2,))
            _check(kind, out, 12)
            if kind == "emit_fault":
                # Arming an emit fault fires the segment's ("fault", ...)
                # invalidation listeners, which drop the Tier-1 memo: the
                # request recompiles cold (and survives the armed fault).
                assert out.path == "cold"
            elif out.ok and kind != "poison":
                # The remaining armed faults don't touch the memo fast
                # path (nothing is emitted or allocated), so the hit
                # stays a hit.  Poison evicts a Tier-2 template, which
                # the memo path never consults.
                assert out.path == "hit"

    @pytest.mark.parametrize("kind", KINDS)
    def test_patched_path(self, kind):
        """Fault injected before a request served by Tier-2 clone+patch."""
        eng = Engine(ADDER, chaos=None)
        with eng.session() as warm:
            assert warm.request("make_adder", (10,), call_args=(1,)).ok
        poisoned_before = REGISTRY.counter("cache.poisoned_evictions").value
        with eng.session(chaos=MATRIX[kind]) as s:
            out = s.request("make_adder", (99,), call_args=(1,))
            _check(kind, out, 100)
            if kind == "poison":
                # The tampered template was caught by the checksum and
                # evicted; the request fell back to a cold compile.
                assert out.path == "cold"
                poisoned = REGISTRY.counter("cache.poisoned_evictions").value
                assert poisoned == poisoned_before + 1
            elif out.ok:
                assert out.path in ("patched", "cold")

    def test_periodic_schedule_is_deterministic(self):
        plan = ChaosPlan(every={"trap": 3})
        eng = Engine(ADDER, chaos=None)
        with eng.session(chaos=plan) as s:
            statuses = []
            for i in range(1, 8):
                out = s.request("make_adder", (10,), call_args=(i,))
                statuses.append(out.ok)
            # Requests 3 and 6 trap; everything else is clean.
            assert statuses == [True, True, False, True, True, False, True]


SUMMER = """
int make_sum(int n) {
    int vspec x = param(int, 0);
    void cspec c = `{
        int i, s;
        s = 0;
        for (i = 0; i < $n; i++)
            s = s + x;
        return s;
    };
    return (int)compile(c, int);
}
"""


class TestTracePoisoning:
    def test_poisoned_trace_deopts_with_identical_results(self):
        """Poison a formed trace mid-flight: the next dispatch must deopt
        back to the superblock path with bit-identical results, and the
        loop must re-promote afterwards (the deopt re-arms the counter)."""
        # No shared template store: both sessions must compile cold so
        # their per-request cycle totals are comparable.
        eng = Engine(SUMMER, chaos=None, share_templates=False)
        plan = ChaosPlan(at={4: "poison_trace"})
        deopts_before = report.tiering_stats()["deopts"]
        clean_values = []
        with eng.session(tiering={"hot_threshold": 2}) as clean:
            for i in range(1, 8):
                out = clean.request("make_sum", (50,), call_args=(i,))
                assert out.ok
                clean_values.append((out.value, out.cycles))
        promos_mid = report.tiering_stats()["promotions"]
        assert promos_mid > 0, "loop workload never formed a trace"
        with eng.session(chaos=plan, tiering={"hot_threshold": 2}) as s:
            for i in range(1, 8):
                out = s.request("make_sum", (50,), call_args=(i,))
                assert out.ok, f"request {i} failed: {out.error!r}"
                assert (out.value, out.cycles) == clean_values[i - 1], \
                    f"request {i} diverged after the trace was poisoned"
        stats = report.tiering_stats()
        assert stats["deopts"] > deopts_before
        assert stats["promotions"] > promos_mid, \
            "engine never re-promoted after the deopt"

    def test_poison_trace_noop_without_tiered_engine(self):
        """Under engine="block" the chaos hook must be a harmless no-op."""
        eng = Engine(ADDER, chaos=None)
        plan = ChaosPlan(at={1: "poison_trace"})
        with eng.session(chaos=plan, engine="block") as s:
            out = s.request("make_adder", (10,), call_args=(5,))
            assert out.ok and out.value == 15


class TestSessionIsolation:
    @pytest.mark.parametrize("kind", KINDS)
    def test_chaos_session_cannot_corrupt_a_clean_one(self, kind):
        """A clean session sharing the engine (and the Tier-2 store) with
        a chaos-ridden one must see correct values on every request."""
        eng = Engine(ADDER, chaos=None)
        noisy = eng.open_session(chaos=ChaosPlan(every={kind: 1}))
        clean = eng.open_session()
        try:
            for i in range(1, 6):
                noisy.request("make_adder", (i,), call_args=(100,))
                out = clean.request("make_adder", (i,), call_args=(100,))
                assert out.ok and out.value == 100 + i, \
                    f"{kind}: clean session corrupted on round {i}"
        finally:
            noisy.close()
            clean.close()

    def test_concurrent_chaos_and_clean_sessions(self):
        """Thread a chaos session against clean sessions; the clean ones
        must stay bit-correct throughout."""
        eng = Engine(ADDER, chaos=None)
        errors = []

        def noisy_client():
            plan = ChaosPlan(every={"emit_fault": 2, "poison": 3})
            try:
                with eng.session(chaos=plan) as s:
                    for i in range(1, 12):
                        s.request("make_adder", (i,), call_args=(0,))
            except BaseException as exc:      # pragma: no cover
                errors.append(exc)

        def clean_client():
            try:
                with eng.session() as s:
                    for i in range(1, 12):
                        out = s.request("make_adder", (i,), call_args=(0,))
                        assert out.ok and out.value == i
            except BaseException as exc:
                errors.append(exc)

        threads = [threading.Thread(target=noisy_client)] + \
                  [threading.Thread(target=clean_client) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors


class TestChaosConfig:
    def test_from_env_parses_periods(self):
        plan = from_env("emit_fault:3, trap:5")
        assert plan.every == {"emit_fault": 3, "trap": 5}
        assert plan.events_for(15) == ("emit_fault", "trap")
        assert plan.events_for(4) == ()

    def test_from_env_off(self):
        assert from_env("") is None
        assert from_env("off") is None

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos kind"):
            ChaosPlan(at={1: "bitflip"})

    def test_engine_reads_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "trap:2")
        eng = Engine(ADDER)
        assert eng.chaos is not None and eng.chaos.every == {"trap": 2}
        with eng.session() as s:
            assert s.request("make_adder", (1,), call_args=(1,)).ok
            out = s.request("make_adder", (2,), call_args=(1,))
            assert isinstance(out.error, CycleBudgetExceeded)
