"""The unified telemetry subsystem: metrics registry, span tracer,
exporters, and the end-to-end lifecycle trace.

The load-bearing invariants (ISSUE acceptance criteria):

* a traced blur compile()+run produces a span tree that nests correctly,
  whose compile span's phase children tile it and sum to the cost
  model's phase totals *exactly*, and whose chrome export is a valid
  trace-event JSON document;
* the legacy ``report`` accessors stay equivalent to the registry;
* ``FALLBACK_STATS["events"]`` is bounded while the count stays exact.
"""

import json

import pytest

from repro import report
from repro.apps import ALL_APPS
from repro.apps.harness import measure
from repro.telemetry import export, metrics, trace
from repro.telemetry.metrics import (
    DEFAULT_EVENT_CAPACITY,
    EventLog,
    Histogram,
    LabeledCounter,
    MetricsRegistry,
)
from repro.telemetry.trace import NULL, Tracer, resolve_mode
from tests.conftest import compile_c


@pytest.fixture(autouse=True)
def _fresh_registry():
    report.reset()
    yield
    report.reset()


# -- metric types -------------------------------------------------------------


class TestMetrics:
    def test_counter_and_gauge(self):
        reg = MetricsRegistry()
        c = reg.counter("c")
        c.inc()
        c.inc(4)
        assert c.value == 5
        g = reg.gauge("g")
        g.set(7)
        g.set(3)
        assert g.value == 3
        reg.reset()
        assert c.value == 0 and g.value == 0

    def test_registry_get_or_create_is_stable(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_labeled_counter_preset_survives_reset(self):
        lc = LabeledCounter("layers", preset=("a", "b"))
        lc.inc("a")
        lc.inc("c", 3)
        assert lc.snapshot() == {"a": 1, "b": 0, "c": 3}
        lc.reset()
        assert lc.snapshot() == {"a": 0, "b": 0}

    def test_histogram_buckets_and_mean(self):
        h = Histogram("h", (10, 100))
        for v in (5, 50, 500):
            h.record(v)
        assert h.buckets == [1, 1, 1]
        assert h.count == 3 and h.total == 555
        assert h.min == 5 and h.max == 500
        assert h.mean == pytest.approx(185.0)
        snap = h.snapshot()
        assert snap["bounds"] == [10, 100]
        with pytest.raises(ValueError):
            Histogram("bad", (100, 10))

    def test_histogram_percentile_edge_cases(self):
        h = Histogram("p", (10, 100))
        # Empty: no sample to report, not a crash and not a zero.
        assert h.percentile(0.5) is None
        h.record(42)
        # A single sample IS every percentile.
        assert h.percentile(0.0) == 42
        assert h.percentile(0.5) == 42
        assert h.percentile(1.0) == 42
        for v in (1, 7, 900):
            h.record(v)
        # p=0 and p=100 pin to the exact extremes, not bucket bounds.
        assert h.percentile(0.0) == 1
        assert h.percentile(1.0) == 900
        mid = h.percentile(0.5)
        assert 1 <= mid <= 900

    def test_histogram_percentile_rejects_bad_quantiles(self):
        h = Histogram("p", (10,))
        h.record(1)
        for bad in (-0.1, 1.5, 100):
            with pytest.raises(ValueError, match="quantile"):
                h.percentile(bad)

    def test_event_log_is_bounded_with_exact_total(self):
        log = EventLog("e", capacity=4)
        for i in range(10):
            log.append(("ev", i))
        assert log.total == 10
        assert len(log) == 4
        assert log.dropped == 6
        assert list(log) == [("ev", i) for i in (6, 7, 8, 9)]
        assert log[0] == ("ev", 6)
        log.reset()
        assert log.total == 0 and len(log) == 0

    def test_record_compile_feeds_three_histograms(self):
        metrics.record_compile("cold", 12_000, 40)
        snap = metrics.REGISTRY.snapshot()
        assert snap["compile.codegen_cycles"]["count"] == 1
        assert snap["compile.generated_instructions"]["sum"] == 40
        assert snap["compile.latency.cold"]["sum"] == 12_000

    def test_event_log_resize_keeps_newest(self):
        log = EventLog("e", capacity=8)
        for i in range(8):
            log.append(i)
        log.resize(4)
        assert log.capacity == 4
        assert list(log) == [4, 5, 6, 7]
        assert log.total == 8                  # exact total survives
        log.resize(16)
        log.append(99)
        assert list(log) == [4, 5, 6, 7, 99]
        with pytest.raises(ValueError):
            log.resize(0)

    def test_histogram_exemplars_capture_trace_ids(self):
        h = Histogram("lat", (10, 100))
        h.record(5)                            # no ambient context: none
        with metrics.exemplar_context("req#1"):
            h.record(50)
        snap = h.snapshot()
        assert snap["exemplars"] == {1: [50, "req#1"]}
        assert metrics.current_exemplar() is None
        h.reset()
        assert "exemplars" not in h.snapshot()


# -- legacy report views over the registry ------------------------------------


class TestLegacyViews:
    def test_fallback_events_are_capped(self):
        for i in range(DEFAULT_EVENT_CAPACITY + 10):
            report.record_fallback("icode", "vcode", f"reason {i}")
        assert report.fallback_count() == DEFAULT_EVENT_CAPACITY + 10
        assert report.FALLBACK_STATS["count"] == DEFAULT_EVENT_CAPACITY + 10
        events = report.FALLBACK_STATS["events"]
        assert len(events) == DEFAULT_EVENT_CAPACITY
        # oldest dropped, newest kept, tuple shape preserved
        assert events[-1] == ("icode", "vcode",
                              f"reason {DEFAULT_EVENT_CAPACITY + 9}")

    def test_views_track_registry(self):
        report.record_cache_hit(100)
        report.record_verify("ticklint", 0, 0.5)
        assert report.CACHE_STATS["hits"] == report.cache_stats()["hits"] == 1
        assert dict(report.CACHE_STATS) == report.cache_stats()
        assert report.VERIFY_STATS["checks_run"] == 1
        assert report.verify_stats()["diagnostics"]["ticklint"] == 0
        report.reset()
        assert report.cache_stats()["cycles_saved"] == 0
        assert metrics.REGISTRY.get("cache.hits").value == 0


# -- the tracer ---------------------------------------------------------------


class TestTracer:
    def test_resolve_mode(self):
        assert resolve_mode(None) == "off"
        assert resolve_mode("on") == "on"
        assert resolve_mode("sample:3") == "sample:3"
        for bad in ("sometimes", "sample:0", "sample:x"):
            with pytest.raises(ValueError):
                resolve_mode(bad)

    def test_spans_nest_and_advance(self):
        t = Tracer("on")
        outer = t.begin("outer", cat="spec")
        t.advance(10)
        with t.span("inner", cat="compile"):
            t.advance(5)
        t.end(outer)
        assert t.cursor == 15
        inner, outer = t.spans
        assert inner.parent == outer.sid
        assert (inner.ts, inner.dur) == (10, 5)
        assert (outer.ts, outer.end) == (0, 15)
        assert "wall_us" in outer.args

    def test_end_advances_by_modeled_cost(self):
        t = Tracer("on")
        s = t.begin("exec:f", cat="exec")
        t.end(s, advance=140, trap=None)
        assert s.dur == 140 and s.args["trap"] is None

    def test_instant_and_add_complete(self):
        t = Tracer("on")
        parent = t.begin("run", cat="spec")
        mark = t.instant("fallback", reason="x")
        assert mark.parent == parent.sid and mark.dur == 0
        t.advance(100)
        t.end(parent)
        child = t.add_complete("compile#1", "compile", ts=-5, end=60,
                               parent=parent)
        assert child.parent == parent.sid
        assert child.ts == parent.ts  # clamped into the parent
        assert child.end == 60

    def test_sampling_keeps_every_nth(self):
        t = Tracer("sample:2")
        assert [t.sample("compile") for _ in range(5)] == \
            [True, False, True, False, True]
        # independent counters per key
        assert t.sample("exec") is True

    def test_span_cap_drops_but_counts(self):
        t = Tracer("on")
        t.MAX_SPANS = 2
        for i in range(4):
            t.instant(f"e{i}")
        assert len(t.spans) == 2 and t.dropped == 2
        t.clear()
        assert t.spans == [] and t.dropped == 0 and t.cursor == 0

    def test_dropped_spans_feed_the_registry_counter(self):
        # Silent span loss was a bug: retention-capped drops must be
        # visible in scrapes, not only on the tracer instance.
        counter = metrics.REGISTRY.counter("telemetry.trace.dropped_spans")
        base = counter.value
        t = Tracer("on")
        t.MAX_SPANS = 1
        for i in range(4):
            t.instant(f"e{i}")
        assert counter.value - base == 3

    def test_dropped_spans_surface_in_export_summary(self):
        t = Tracer("on")
        t.MAX_SPANS = 2
        for i in range(5):
            t.instant(f"e{i}")
        text = export.summary(t)
        assert "3 spans dropped" in text
        t2 = Tracer("on")
        t2.instant("kept")
        assert "spans dropped" not in export.summary(t2)

    def test_null_tracer_is_inert(self):
        assert not NULL.enabled
        assert NULL.sample() is False
        with NULL.span("x") as s:
            assert s is None
        assert trace.active() is NULL
        real = Tracer("on")
        with trace.activate(real):
            assert trace.active() is real
        assert trace.active() is NULL


# -- end-to-end lifecycle trace -----------------------------------------------


def _span_index(tracer):
    return {s.sid: s for s in tracer.spans}


class TestLifecycleTrace:
    @pytest.fixture(scope="class")
    def blur(self):
        report.reset()
        return measure(ALL_APPS["blur"], backend="icode", telemetry="on")

    def test_measure_attaches_tracer_only_when_asked(self, blur):
        assert isinstance(blur.tracer, Tracer)
        off = measure(ALL_APPS["pow"], backend="icode")
        assert off.tracer is None

    def test_spans_nest_correctly(self, blur):
        by_sid = _span_index(blur.tracer)
        for span in blur.tracer.spans:
            if span.parent is None:
                continue
            parent = by_sid[span.parent]
            assert parent.ts <= span.ts <= span.end <= parent.end, \
                f"{span.name} escapes {parent.name}"

    def test_phase_children_tile_compile_span_exactly(self, blur):
        spans = blur.tracer.spans
        compiles = [s for s in spans if s.cat == "compile"]
        assert len(compiles) == 1, "blur performs exactly one compile()"
        (c,) = compiles
        kids = sorted((s for s in spans
                       if s.cat == "phase" and s.parent == c.sid),
                      key=lambda s: s.ts)
        assert kids[0].ts == c.ts and kids[-1].end == c.end
        for a, b in zip(kids, kids[1:]):
            assert a.end == b.ts, "phase children must tile with no gaps"
        # ... and the tiling is the cost model's phase totals exactly.
        assert sum(k.dur for k in kids) == c.dur == blur.codegen_cycles
        assert c.args["path"] == "cold"
        assert c.args["backend"] == "icode"
        entry, end = c.args["code_range"]
        assert c.args["entry"] == entry < end

    def test_exec_span_matches_measured_cycles(self, blur):
        execs = [s for s in blur.tracer.spans if s.cat == "exec"]
        assert execs, "the timed dynamic run must appear on the trace"
        assert execs[-1].dur == blur.dynamic_cycles

    def test_spec_run_span_encloses_the_compile(self, blur):
        spans = blur.tracer.spans
        run = next(s for s in spans if s.cat == "spec")
        compile_span = next(s for s in spans if s.cat == "compile")
        assert compile_span.parent == run.sid

    def test_verify_layers_appear_as_instants(self, blur):
        names = {s.name for s in blur.tracer.spans if s.cat == "verify"}
        assert "verify:codeaudit" in names

    def test_chrome_export_schema(self, blur):
        doc = export.chrome_trace(blur.tracer, title="blur")
        # must round-trip as strict JSON (Perfetto requirement)
        doc = json.loads(json.dumps(doc))
        events = doc["traceEvents"]
        assert doc["otherData"]["clock"] == "modeled cycles"
        phases = {e["ph"] for e in events}
        assert phases <= {"M", "X", "i"}
        for e in events:
            assert {"name", "ph", "pid"} <= set(e)
            if e["ph"] == "X":
                assert e["dur"] >= 0 and e["ts"] >= 0
        assert len([e for e in events if e["ph"] != "M"]) == \
            len(blur.tracer.spans)

    def test_jsonl_and_summary_render(self, blur):
        lines = export.to_jsonl(blur.tracer).strip().splitlines()
        assert len(lines) == len(blur.tracer.spans) + 1
        assert "metrics" in json.loads(lines[-1])
        text = export.summary(blur.tracer)
        assert "compile" in text and "timeline" in text


class TestKnobPlumbing:
    SRC = """
    int build(void) {
        int vspec a = param(int, 0);
        return (int)compile(`(a + 1), int);
    }
    """

    def test_sample_mode_traces_every_nth_compile(self):
        proc = compile_c(self.SRC, telemetry="sample:2", codecache=False)
        for _ in range(4):
            proc.run("build")
        compiles = [s for s in proc.tracer.spans if s.cat == "compile"]
        assert len(compiles) == 2
        # metrics stay exact regardless of sampling
        snap = metrics.REGISTRY.snapshot()
        assert snap["compile.codegen_cycles"]["count"] == 4

    def test_telemetry_off_by_default(self):
        proc = compile_c(self.SRC)
        proc.run("build")
        assert proc.tracer is None and proc.machine.tracer is None

    def test_cache_paths_reach_compile_span_args(self):
        proc = compile_c(self.SRC, telemetry="on", codecache=True)
        proc.run("build")
        proc.run("build")
        paths = [s.args["path"] for s in proc.tracer.spans
                 if s.cat == "compile"]
        assert paths == ["cold", "hit"]
        snap = metrics.REGISTRY.snapshot()
        assert snap["compile.latency.hit"]["count"] == 1

    def test_shared_tracer_spans_static_and_dynamic(self):
        from repro import TccCompiler

        tcc = TccCompiler(telemetry="on")
        proc = tcc.compile(self.SRC).start(codecache=False)
        proc.run("build")
        cats = {s.cat for s in proc.tracer.spans}
        assert {"static", "spec", "compile", "phase"} <= cats
        assert proc.tracer is tcc.tracer

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            compile_c(self.SRC, telemetry="loud")


class TestTelemetryCli:
    def test_summary_to_stdout(self, capsys):
        from repro.telemetry.__main__ import main

        assert main(["pow"]) == 0
        out = capsys.readouterr().out
        assert "Telemetry summary" in out and "compile" in out

    def test_chrome_output_file(self, tmp_path, capsys):
        from repro.telemetry.__main__ import main

        path = tmp_path / "pow.json"
        assert main(["pow", "-f", "chrome", "-o", str(path)]) == 0
        doc = json.loads(path.read_text())
        assert doc["otherData"]["clock"] == "modeled cycles"
        assert any(e.get("ph") == "X" for e in doc["traceEvents"])

    def test_jsonl_output_file(self, tmp_path, capsys):
        from repro.telemetry.__main__ import main

        path = tmp_path / "pow.jsonl"
        assert main(["pow", "-f", "jsonl", "-o", str(path)]) == 0
        lines = path.read_text().strip().splitlines()
        assert all(json.loads(line) for line in lines)

    def test_list_and_unknown_app(self, capsys):
        from repro.telemetry.__main__ import main

        assert main(["--list"]) == 0
        assert "blur" in capsys.readouterr().out
        assert main(["nonsense"]) == 1
        assert "unknown app" in capsys.readouterr().err
