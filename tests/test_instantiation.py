"""Instantiation-time semantics: repeated compiles, storage isolation,
composition edge cases, cost-model attribution."""

import pytest

from repro.runtime.costmodel import Phase
from tests.conftest import BACKENDS, compile_c


@pytest.mark.parametrize("backend", BACKENDS)
class TestRepeatedInstantiation:
    def test_same_cspec_compiles_twice(self, backend):
        src = """
        int cspec saved;
        void make(int x) { saved = `($x * 2); }
        int build(int x) { make(x); return (int)compile(saved, int); }
        """
        proc = compile_c(src, backend=backend)
        f1 = proc.function(proc.run("build", 5), "", "i")
        f2 = proc.function(proc.run("build", 9), "", "i")
        assert f1() == 10 and f2() == 18
        assert f1() == 10  # f1 unchanged by the second instantiation

    _BUILD_TWICE_SRC = """
        int cspec saved;
        void make(void) {
            int vspec v = local(int);
            saved = `(v = 3, v * v);
        }
        int build_twice(int *out) {
            int a, b;
            make();
            a = (int)compile(saved, int);
            b = (int)compile(saved, int);
            out[0] = a;
            out[1] = b;
            return 0;
        }
        """

    def test_one_closure_many_instantiations(self, backend):
        # the *same* closure (not re-specified) compiled twice: with the
        # specialization cache off, fresh storage is allocated each time
        # and two distinct bodies are installed
        proc = compile_c(self._BUILD_TWICE_SRC, backend=backend,
                         codecache=False)
        out = proc.machine.memory.alloc_words([0, 0])
        proc.run("build_twice", out)
        a, b = proc.machine.memory.read_words(out, 2)
        assert a != b  # two distinct function bodies
        assert proc.function(a, "", "i")() == 9
        assert proc.function(b, "", "i")() == 9

    def test_one_closure_cached_instantiations(self, backend):
        # with the cache on (the default) the unchanged closure memoizes:
        # the same installed body is returned and still computes correctly
        # (its dynamic local is per-call register/stack storage)
        proc = compile_c(self._BUILD_TWICE_SRC, backend=backend)
        out = proc.machine.memory.alloc_words([0, 0])
        proc.run("build_twice", out)
        a, b = proc.machine.memory.read_words(out, 2)
        assert a == b  # Tier-1 memo hit reuses the installed body
        assert proc.function(a, "", "i")() == 9

    def test_vspec_storage_not_shared_across_compiles(self, backend):
        # a vspec used by two separately compiled functions gets storage
        # per instantiation (compile resets dynamic-local information)
        src = """
        int vspec shared;
        int build_set(void) {
            shared = local(int);
            return (int)compile(`{ shared = 42; return shared; }, int);
        }
        """
        proc = compile_c(src, backend=backend)
        f1 = proc.function(proc.run("build_set"), "", "i")
        f2 = proc.function(proc.run("build_set"), "", "i")
        assert f1() == 42 and f2() == 42

    def test_instantiation_isolated_register_state(self, backend):
        # generating one function must not corrupt a previously generated
        # one even under register pressure
        src = """
        int build(int seed) {
            int vspec x = param(int, 0);
            int cspec c = `0;
            int i;
            for (i = 0; i < 20; i++)
                c = `(c + x * $i + $seed);
            return (int)compile(`{ return c; }, int);
        }
        """
        proc = compile_c(src, backend=backend)
        f1 = proc.function(proc.run("build", 1), "i", "i")
        expected1 = sum(2 * i + 1 for i in range(20))
        assert f1(2) == expected1
        proc.function(proc.run("build", 100), "i", "i")
        assert f1(2) == expected1  # still intact


@pytest.mark.parametrize("backend", BACKENDS)
class TestCompositionEdgeCases:
    def test_deep_composition_chain(self, backend):
        src = """
        int build(int n) {
            int i;
            int cspec c = `1;
            for (i = 0; i < n; i++)
                c = `(c + c);
            return (int)compile(c, int);
        }
        """
        # c + c doubles the *code* each level: 2^n additions of 1
        proc = compile_c(src, backend=backend)
        fn = proc.function(proc.run("build", 6), "", "i")
        assert fn() == 2 ** 6

    def test_void_cspec_in_expression_rejected(self, backend):
        from repro.errors import TypeError_

        with pytest.raises(TypeError_):
            compile_c(
                "void f(void) { void cspec v = `{ ; };"
                " int cspec c = `(v + 1); }",
                backend=backend,
            )

    def test_float_cspec_composition(self, backend):
        src = """
        int build(void) {
            double cspec half = `0.5;
            double vspec x = param(double, 0);
            return (int)compile(`(x * half + half), double);
        }
        """
        proc = compile_c(src, backend=backend)
        fn = proc.function(proc.run("build"), "f", "f")
        assert fn(3.0) == 2.0

    def test_pointer_cspec_composition(self, backend):
        src = """
        int build(int *data) {
            int * cspec base = `((int *)$data);
            return (int)compile(`(base[2]), int);
        }
        """
        proc = compile_c(src, backend=backend)
        data = proc.machine.memory.alloc_words([5, 6, 7, 8])
        fn = proc.function(proc.run("build", data), "", "i")
        assert fn() == 7


class TestCostAttribution:
    def test_spec_time_closures_charged_to_next_compile(self):
        src = """
        int build(int x) {
            int cspec a = `($x + 1);
            int cspec b = `(a * 2);
            return (int)compile(b, int);
        }
        """
        proc = compile_c(src)
        proc.run("build", 3)
        stats = proc.last_codegen_stats
        # two closure allocations (a and b) appear in this compile's bill
        assert stats.events[(Phase.CLOSURE, "alloc")] == 2
        # composing a into b costs a cgf_call
        assert stats.events[(Phase.CLOSURE, "cgf_call")] >= 1

    def test_lifetime_accumulates_across_compiles(self):
        src = """
        int build(void) {
            int a;
            a = (int)compile(`1, int);
            a = (int)compile(`2, int);
            a = (int)compile(`3, int);
            return a;
        }
        """
        proc = compile_c(src)
        proc.run("build")
        assert proc.compile_count == 3
        assert proc.cost.lifetime.events[(Phase.CLOSURE, "alloc")] == 3

    def test_generated_instruction_count_plausible(self):
        src = "int build(void) { return (int)compile(`(1 + 2), int); }"
        proc = compile_c(src)
        entry = proc.run("build")
        stats = proc.last_codegen_stats
        actual = len(proc.machine.code.instructions) - entry
        assert stats.generated_instructions == actual
