"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro import TccCompiler


@pytest.fixture(scope="session")
def tcc():
    return TccCompiler()


def compile_c(source: str, **start_options):
    """Compile `C source and start a process (fresh machine)."""
    return TccCompiler().compile(source).start(**start_options)


def run_static(source: str, fn_name: str, *args, opt: str = "lcc"):
    """Compile a pure-C function and call it on the target machine."""
    proc = compile_c(source, static_opt=opt)
    return proc.static_function(fn_name)(*args)


def run_dynamic(source: str, builder: str, builder_args=(), call_args=(),
                backend: str = "icode", signature: str | None = None,
                returns: str = "i", **options):
    """Run a spec-time builder, then invoke the generated function."""
    proc = compile_c(source, backend=backend, **options)
    entry = proc.run(builder, *builder_args)
    if signature is None:
        signature = "i" * len(call_args)
    fn = proc.function(entry, signature, returns)
    return fn(*call_args)


BACKENDS = ("vcode", "icode")
