"""Semantic analysis tests: typing, captures, derived RTCs, diagnostics."""

import pytest

from repro.errors import TypeError_
from repro.frontend import analyze, cast, parse
from repro.frontend import typesys as T
from repro.runtime.closures import CaptureKind


def check(source):
    return analyze(parse(source))


def tick_of(source, fn="f", index=0):
    tu = check(source)
    return tu.functions[fn].ticks[index]


def capture_kinds(tick):
    return sorted(
        (c.decl.name, c.kind) for c in tick.captures.values()
    )


class TestBasicTyping:
    def test_undeclared_identifier(self):
        with pytest.raises(TypeError_, match="undeclared"):
            check("int f(void) { return nope; }")

    def test_redeclaration_in_same_scope(self):
        with pytest.raises(TypeError_, match="redeclaration"):
            check("void f(void) { int x; int x; }")

    def test_shadowing_in_inner_scope_ok(self):
        check("void f(void) { int x; { int x; x = 1; } }")

    def test_return_type_mismatch(self):
        with pytest.raises(TypeError_):
            check("int *f(void) { return 1.5; }")

    def test_void_function_returning_value(self):
        with pytest.raises(TypeError_, match="void"):
            check("void f(void) { return 1; }")

    def test_nonvoid_function_bare_return(self):
        with pytest.raises(TypeError_, match="must return"):
            check("int f(void) { return; }")

    def test_call_arity_checked(self):
        with pytest.raises(TypeError_, match="argument"):
            check("int g(int a) { return a; } int f(void) { return g(); }")

    def test_call_arg_type_checked(self):
        with pytest.raises(TypeError_, match="cannot pass"):
            check(
                "int g(int *p) { return *p; }"
                "int f(void) { return g(1.5); }"
            )

    def test_calling_non_function(self):
        with pytest.raises(TypeError_, match="called object"):
            check("int f(void) { int x; return x(); }")

    def test_assign_to_rvalue(self):
        with pytest.raises(TypeError_, match="lvalue"):
            check("void f(void) { 1 = 2; }")

    def test_array_not_assignable(self):
        with pytest.raises(TypeError_):
            check("void f(void) { int a[2]; int b[2]; a = b; }")

    def test_pointer_arith_types(self):
        tu = check("int f(int *p) { return *(p + 1); }")
        assert tu.functions["f"].ty.ret == T.INT

    def test_pointer_minus_pointer_is_int(self):
        check("int f(int *p, int *q) { return p - q; }")

    def test_mismatched_pointer_subtraction(self):
        with pytest.raises(TypeError_):
            check("int f(int *p, char *q) { return p - q; }")

    def test_modulo_requires_integers(self):
        with pytest.raises(TypeError_, match="integer"):
            check("double f(double x) { return x % 2.0; }")

    def test_dereference_non_pointer(self):
        with pytest.raises(TypeError_, match="dereference"):
            check("int f(int x) { return *x; }")

    def test_void_pointer_deref_rejected(self):
        with pytest.raises(TypeError_):
            check("int f(void *p) { return *p; }")

    def test_address_of_rvalue(self):
        with pytest.raises(TypeError_, match="lvalue"):
            check("void f(void) { int *p; p = &3; }")

    def test_break_outside_loop(self):
        with pytest.raises(TypeError_, match="break"):
            check("void f(void) { break; }")

    def test_continue_outside_loop(self):
        with pytest.raises(TypeError_, match="continue"):
            check("void f(void) { continue; }")

    def test_duplicate_parameter(self):
        with pytest.raises(TypeError_, match="duplicate"):
            check("int f(int a, int a) { return a; }")

    def test_redefined_function(self):
        with pytest.raises(TypeError_, match="redefinition"):
            check("int f(void) { return 1; } int f(void) { return 2; }")

    def test_forward_declaration_then_definition(self):
        check("int g(int); int f(void) { return g(1); } "
              "int g(int x) { return x; }")

    def test_global_initializer_must_be_constant(self):
        with pytest.raises(TypeError_, match="constant"):
            check("int g(void) { return 1; } int x = g();")

    def test_array_size_from_initializer(self):
        tu = check("int a[] = {1, 2, 3};")
        assert tu.globals["a"].ty.length == 3

    def test_too_many_initializers(self):
        with pytest.raises(TypeError_, match="initializers"):
            check("int a[2] = {1, 2, 3};")


class TestAddressAnalysis:
    def test_address_taken_marks_needs_memory(self):
        tu = check("void f(void) { int x; int *p; p = &x; }")
        fn = tu.functions["f"]
        decl = fn.body.stmts[0].decls[0]
        assert decl.needs_memory

    def test_plain_local_stays_in_register(self):
        tu = check("int f(void) { int x; x = 1; return x; }")
        decl = tu.functions["f"].body.stmts[0].decls[0]
        assert not decl.needs_memory

    def test_arrays_always_memory(self):
        tu = check("int f(void) { int a[2]; return a[0]; }")
        decl = tu.functions["f"].body.stmts[0].decls[0]
        assert decl.needs_memory


class TestTickTyping:
    def test_tick_expression_type(self):
        tick = tick_of("void f(void) { int cspec c = `(1 + 2); }")
        assert tick.eval_type == T.INT

    def test_tick_statement_type_void(self):
        tick = tick_of("void f(void) { void cspec c = `{ return 1; }; }")
        assert tick.eval_type == T.VOID

    def test_cspec_assignment_type_checked(self):
        with pytest.raises(TypeError_):
            check("void f(void) { int cspec c = `1.5; }")

    def test_nested_tick_rejected(self):
        with pytest.raises(TypeError_, match="nest"):
            check("void f(void) { int cspec c = `(1 + `2); }")

    def test_dollar_outside_tick(self):
        with pytest.raises(TypeError_, match="backquote"):
            check("void f(int x) { int y; y = $x; }")

    def test_dollar_on_cspec_rejected(self):
        with pytest.raises(TypeError_, match="cspec"):
            check("void f(void) { int cspec c = `1; int cspec d = `($c); }")

    def test_compile_in_dynamic_code_rejected(self):
        with pytest.raises(TypeError_, match="compile"):
            check(
                "void f(void) { int cspec c = `1;"
                " void cspec d = `{ compile(c, int); }; }"
            )

    def test_local_in_dynamic_code_rejected(self):
        with pytest.raises(TypeError_, match="local"):
            check("void f(void) { void cspec d = `{ local(int); }; }")

    def test_spec_only_builtin_in_tick_rejected(self):
        with pytest.raises(TypeError_, match="printf"):
            check('void f(void) { void cspec c = `{ printf("x"); }; }')

    def test_compile_requires_cspec(self):
        with pytest.raises(TypeError_, match="cspec"):
            check("void f(int x) { compile(x, int); }")

    def test_dynamic_local_array_allowed(self):
        # arrays in dynamic code get per-instantiation memory
        tu = check("void f(void) { void cspec c = `{ int a[4]; a[0] = 1; }; }")
        assert tu.functions["f"] is not None

    def test_dynamic_local_cspec_rejected(self):
        with pytest.raises(TypeError_, match="specification"):
            check("void f(void) { void cspec c = `{ int cspec x; }; }")

    def test_address_of_dynamic_local_rejected(self):
        with pytest.raises(TypeError_, match="dynamic local"):
            check(
                "void f(void) { void cspec c = "
                "`{ int x; int *p; p = &x; }; }"
            )

    def test_tick_body_using_cspec_var(self):
        tick = tick_of(
            "void f(void) { int cspec a = `1; int cspec b = `(a + 2); }",
            index=1,
        )
        kinds = [c.kind for c in tick.captures.values()]
        assert kinds == [CaptureKind.CSPEC]


class TestCaptures:
    def test_free_variable_capture(self):
        tick = tick_of("void f(int x) { int cspec c = `(x + 1); }")
        assert capture_kinds(tick) == [("x", CaptureKind.FREEVAR)]

    def test_free_variable_needs_memory(self):
        tu = check("void f(void) { int x; int cspec c = `(x + 1); }")
        decl = tu.functions["f"].body.stmts[0].decls[0]
        assert decl.needs_memory

    def test_spectime_dollar_not_a_freevar(self):
        tick = tick_of("void f(int x) { int cspec c = `($x + 1); }")
        assert capture_kinds(tick) == []
        assert tick.dollars[0].spectime

    def test_vspec_capture(self):
        tick = tick_of(
            "void f(void) { int vspec v = local(int); int cspec c = `(v + 1); }"
        )
        assert capture_kinds(tick) == [("v", CaptureKind.VSPEC)]

    def test_same_variable_captured_once(self):
        tick = tick_of("void f(int x) { int cspec c = `(x + x * 2); }")
        assert len(tick.captures) == 1

    def test_global_captured_as_freevar(self):
        tick = tick_of("int g; void f(void) { int cspec c = `(g + 1); }")
        assert capture_kinds(tick) == [("g", CaptureKind.FREEVAR)]

    def test_function_reference_not_captured(self):
        tick = tick_of(
            "int h(int a) { return a; }"
            "void f(void) { int cspec c = `(h(3)); }"
        )
        assert capture_kinds(tick) == []


class TestDerivedRTC:
    DP = """
    void f(int n, int *row, int *col) {
        void cspec c = `{
            int k, sum;
            sum = 0;
            for (k = 0; k < $n; k++)
                if ($row[k])
                    sum = sum + col[k] * $row[k];
            return sum;
        };
    }
    """

    def test_induction_variable_marked(self):
        tick = tick_of(self.DP)
        loops = [n for n in cast.walk(tick.body) if isinstance(n, cast.For)]
        assert loops[0].unroll
        assert loops[0].induction.name == "k"
        assert loops[0].induction.derived_rtc

    def test_emission_time_dollar(self):
        tick = tick_of(self.DP)
        spectimes = [d.spectime for d in tick.dollars]
        # $n is specification-time; both $row[k] are emission-time
        assert spectimes == [True, False, False]

    def test_rtconst_capture_for_emission_dollar(self):
        tick = tick_of(self.DP)
        assert ("row", CaptureKind.RTCONST) in capture_kinds(tick)

    def test_emission_time_if(self):
        tick = tick_of(self.DP)
        conds = [n for n in cast.walk(tick.body) if isinstance(n, cast.If)]
        assert conds[0].emission_time

    def test_loop_with_free_bound_not_unrolled(self):
        tick = tick_of(
            "void f(int n) { void cspec c = `{ int k; "
            "for (k = 0; k < n; k++) k = k; }; }"
        )
        loops = [x for x in cast.walk(tick.body) if isinstance(x, cast.For)]
        assert not loops[0].unroll

    def test_loop_with_body_assignment_not_unrolled(self):
        tick = tick_of(
            "void f(int n) { void cspec c = `{ int k; "
            "for (k = 0; k < $n; k++) k = k + 2; }; }"
        )
        loops = [x for x in cast.walk(tick.body) if isinstance(x, cast.For)]
        assert not loops[0].unroll

    def test_loop_with_break_not_unrolled(self):
        tick = tick_of(
            "void f(int n) { void cspec c = `{ int k, s; s = 0;"
            "for (k = 0; k < $n; k++) { if (s) break; s = 1; } }; }"
        )
        loops = [x for x in cast.walk(tick.body) if isinstance(x, cast.For)]
        assert not loops[0].unroll

    def test_nested_derived_rtc(self):
        # the paper: run-time constant info propagates down loop nests
        tick = tick_of(
            "void f(int n) { void cspec c = `{ int i, j, s; s = 0;"
            "for (i = 0; i < $n; i++)"
            "  for (j = 0; j < i + 1; j++)"
            "    s = s + 1; }; }"
        )
        loops = [x for x in cast.walk(tick.body) if isinstance(x, cast.For)]
        assert all(l.unroll for l in loops)

    def test_downward_counting_loop(self):
        tick = tick_of(
            "void f(int n) { void cspec c = `{ int k, s; s = 0;"
            "for (k = $n; k > 0; k--) s = s + k; }; }"
        )
        loops = [x for x in cast.walk(tick.body) if isinstance(x, cast.For)]
        assert loops[0].unroll

    def test_dollar_of_plain_dynamic_local_rejected(self):
        with pytest.raises(TypeError_, match="derived"):
            check(
                "void f(void) { void cspec c = `{ int x; int y; x = 1;"
                " y = $x; }; }"
            )


class TestSpecialFormTyping:
    def test_local_type(self):
        tu = check("void f(void) { double vspec v = local(double); }")
        decl = tu.functions["f"].body.stmts[0].decls[0]
        assert decl.ty == T.VspecType(T.DOUBLE)

    def test_param_index_must_be_int(self):
        with pytest.raises(TypeError_, match="index"):
            check("void f(void) { int vspec p = param(int, 1.5); }")

    def test_vspec_type_mismatch(self):
        with pytest.raises(TypeError_):
            check("void f(void) { int vspec v = local(double); }")

    def test_compile_result_callable(self):
        check(
            "int f(void) { int cspec c = `1;"
            " return ((int (*)(void))compile(c, int))(); }"
        )

    def test_push_requires_int_cspec(self):
        with pytest.raises(TypeError_, match="int cspec"):
            check("void f(void) { push(`1.5); }")

    def test_apply_returns_int_cspec(self):
        tu = check(
            "int g(int a) { return a; }"
            "void f(void) { int cspec c = apply(g); }"
        )
        assert tu.functions["f"] is not None
