"""The persistent code cache (repro.persist): warm starts, integrity
rejection, version/fingerprint gating, concurrent writers, and the
bit-identical-replay differential.

Every test drives the cache through the public surfaces — a ``Process``
with ``codecache_dir`` or an ``Engine(codecache_dir=...)`` — and tampers
with the on-disk JSON directly to model corruption, truncation, and
foreign-format entries.
"""

from __future__ import annotations

import glob
import json
import os
import threading

import pytest

from repro import Engine, TccCompiler
from repro.persist import (
    FORMAT_VERSION,
    decode_template,
    payload_digest,
    program_namespace,
)
from repro.serving import ChaosPlan
from repro.telemetry.metrics import REGISTRY

ADDER = """
int make_adder(int n) {
    int vspec p = param(int, 0);
    int cspec c = `($n + p);
    return (int)compile(c, int);
}
"""

MULDIV = """
int make_muldiv(int a, int b) {
    int vspec p = param(int, 0);
    int cspec c = `(($a * p) / $b);
    return (int)compile(c, int);
}
"""


def _proc(source=ADDER, **options):
    return TccCompiler().compile(source).start(**options)


def _entry_files(root):
    return sorted(glob.glob(os.path.join(str(root), "*", "*", "*.json")))


def _warm(tmp_path, n=10):
    """Cold-compile one adder shape into ``tmp_path`` and flush it."""
    proc = _proc(codecache_dir=str(tmp_path))
    entry = proc.run("make_adder", n)
    assert proc._compile_path == "cold"
    assert proc.function(entry, "i", "i")(5) == n + 5
    proc.codecache.flush()
    files = _entry_files(tmp_path)
    assert len(files) == 1
    return files[0]


class TestWarmStart:
    def test_fresh_process_serves_seen_shape_via_patching(self, tmp_path):
        _warm(tmp_path, n=10)
        proc = _proc(codecache_dir=str(tmp_path))
        entry = proc.run("make_adder", 10)
        assert proc._compile_path == "patched", \
            "fresh process cold-compiled a persisted shape"
        assert proc.function(entry, "i", "i")(5) == 15

    def test_new_bindings_of_a_seen_shape_also_patch(self, tmp_path):
        _warm(tmp_path, n=10)
        proc = _proc(codecache_dir=str(tmp_path))
        entry = proc.run("make_adder", 77)   # same shape, unseen $n
        assert proc._compile_path == "patched"
        assert proc.function(entry, "i", "i")(1) == 78

    def test_unseen_shape_still_compiles_cold(self, tmp_path):
        _warm(tmp_path)
        proc = _proc(MULDIV, codecache_dir=str(tmp_path))
        entry = proc.run("make_muldiv", 6, 2)
        assert proc._compile_path == "cold"
        assert proc.function(entry, "i", "i")(7) == 21

    def test_namespaces_partition_programs(self, tmp_path):
        _warm(tmp_path)
        _proc(MULDIV, codecache_dir=str(tmp_path)).run("make_muldiv", 3, 1)
        from repro.persist.diskcache import _flush_all_at_exit

        _flush_all_at_exit()
        # The two programs must land in two distinct namespaces (the
        # driver hashes the full merged source, prelude included).
        namespaces = {p.split(os.sep)[-3] for p in _entry_files(tmp_path)}
        assert len(namespaces) == 2
        assert all(len(ns) == len(program_namespace(ADDER))
                   for ns in namespaces)

    def test_engine_fleet_warm_start(self, tmp_path):
        eng1 = Engine(ADDER, codecache_dir=str(tmp_path))
        with eng1.session() as s:
            assert s.request("make_adder", (40,), call_args=(3,)).ok
        eng2 = Engine(ADDER, codecache_dir=str(tmp_path))
        with eng2.session() as s:
            out = s.request("make_adder", (40,), call_args=(3,))
            assert out.ok and out.value == 43
            assert out.path == "patched", \
                "second engine cold-compiled a fleet-shared shape"


class TestIntegrity:
    def test_corrupted_operand_is_rejected_and_file_deleted(self, tmp_path):
        path = _warm(tmp_path)
        with open(path) as fh:
            payload = json.load(fh)
        # Tamper one instruction operand without re-sealing the digest.
        instrs = payload["templates"][0]["instructions"]
        instrs[0][1] = (instrs[0][1] or 0) + 1
        with open(path, "w") as fh:
            json.dump(payload, fh)
        rejects = REGISTRY.counter("cache.disk.rejects").value
        proc = _proc(codecache_dir=str(tmp_path))
        entry = proc.run("make_adder", 10)
        assert proc._compile_path == "cold"
        assert proc.function(entry, "i", "i")(5) == 15
        assert REGISTRY.counter("cache.disk.rejects").value == rejects + 1
        assert not os.path.exists(path), "corrupt entry must self-heal away"

    def test_truncated_file_is_rejected(self, tmp_path):
        path = _warm(tmp_path)
        with open(path) as fh:
            text = fh.read()
        with open(path, "w") as fh:
            fh.write(text[: len(text) // 2])
        rejects = REGISTRY.counter("cache.disk.rejects").value
        proc = _proc(codecache_dir=str(tmp_path))
        entry = proc.run("make_adder", 10)
        assert proc._compile_path == "cold"
        assert proc.function(entry, "i", "i")(2) == 12
        assert REGISTRY.counter("cache.disk.rejects").value == rejects + 1
        assert not os.path.exists(path)

    def test_format_version_mismatch_is_silent_miss(self, tmp_path):
        path = _warm(tmp_path)
        with open(path) as fh:
            payload = json.load(fh)
        payload["format"] = FORMAT_VERSION + 998
        with open(path, "w") as fh:
            json.dump(payload, fh)
        rejects = REGISTRY.counter("cache.disk.rejects").value
        proc = _proc(codecache_dir=str(tmp_path))
        entry = proc.run("make_adder", 10)
        assert proc._compile_path == "cold"
        assert proc.function(entry, "i", "i")(1) == 11
        # Not corruption: no reject, and the file is left for whichever
        # (newer/older) worker understands that format.
        assert REGISTRY.counter("cache.disk.rejects").value == rejects
        assert os.path.exists(path)

    def test_fingerprint_mismatch_is_silent_miss(self, tmp_path):
        path = _warm(tmp_path)
        with open(path) as fh:
            payload = json.load(fh)
        payload["fingerprint"] = "0" * 64
        with open(path, "w") as fh:
            json.dump(payload, fh)
        proc = _proc(codecache_dir=str(tmp_path))
        assert proc.run("make_adder", 10) and proc._compile_path == "cold"
        assert os.path.exists(path)

    def test_corrupt_disk_chaos_end_to_end(self, tmp_path):
        eng1 = Engine(ADDER, codecache_dir=str(tmp_path))
        with eng1.session() as s:
            assert s.request("make_adder", (10,), call_args=(1,)).ok
        rejects = REGISTRY.counter("cache.disk.rejects").value
        eng2 = Engine(ADDER, codecache_dir=str(tmp_path))
        with eng2.session(chaos=ChaosPlan(at={1: "corrupt_disk"})) as s:
            out = s.request("make_adder", (10,), call_args=(1,))
            assert out.ok and out.value == 11
            assert out.path == "cold"
        assert REGISTRY.counter("cache.disk.rejects").value > rejects


class TestConcurrency:
    def test_eight_writers_lose_nothing(self, tmp_path):
        """Eight processes (one per thread) hammer one shared directory
        with loads and stores; afterwards every entry file must parse,
        every template digest must verify, and a fresh process must
        warm-start from the survivors."""
        errors = []

        def worker(i):
            try:
                proc = _proc(codecache_dir=str(tmp_path))
                for n in (10, 20, 30 + i):
                    entry = proc.run("make_adder", n)
                    assert proc.function(entry, "i", "i")(1) == n + 1
                proc.codecache.flush()
            except BaseException as exc:      # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors

        files = _entry_files(tmp_path)
        assert files, "no entries survived the hammer"
        for path in files:
            with open(path) as fh:
                payload = json.load(fh)
            assert payload["format"] == FORMAT_VERSION
            for raw in payload["templates"]:
                assert raw["digest"] == payload_digest(raw)
                decode_template(raw)   # must not raise

        proc = _proc(codecache_dir=str(tmp_path))
        entry = proc.run("make_adder", 10)
        assert proc._compile_path == "patched"
        assert proc.function(entry, "i", "i")(9) == 19


class TestDifferential:
    @pytest.mark.parametrize("source, builder, args, call, want", [
        (ADDER, "make_adder", (10,), 5, 15),
        (MULDIV, "make_muldiv", (6, 2), 7, 21),
    ])
    def test_replayed_template_is_bit_identical_to_cold_compile(
            self, tmp_path, source, builder, args, call, want):
        """A template deserialized from disk and clone+patched must emit
        the exact instruction sequence a cold compile would have."""
        warm_src = _proc(source, codecache_dir=str(tmp_path))
        warm_src.run(builder, *args)
        warm_src.codecache.flush()

        def capture(proc):
            entry = proc.run(builder, *args)
            here = proc.machine.code.here
            code = [(i.op, i.a, i.b, i.c)
                    for i in proc.machine.code.instructions[entry:here]]
            return entry, code, proc.function(entry, "i", "i")(call)

        warm = _proc(source, codecache_dir=str(tmp_path))
        cold = _proc(source, codecache=False)
        warm_entry, warm_code, warm_value = capture(warm)
        cold_entry, cold_code, cold_value = capture(cold)
        assert warm._compile_path == "patched"
        assert warm_entry == cold_entry
        assert warm_code == cold_code, \
            "disk-replayed code diverged from a cold compile"
        assert warm_value == cold_value == want
