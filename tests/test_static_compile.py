"""End-to-end tests of the static back end (C -> target code), at both
optimization levels."""

import pytest

from tests.conftest import compile_c

OPTS = ("lcc", "gcc")


def run(source, fn, *args, opt="lcc", **kw):
    proc = compile_c(source, static_opt=opt)
    return proc.static_function(fn)(*args)


@pytest.mark.parametrize("opt", OPTS)
class TestArithmetic:
    def test_constant_return(self, opt):
        assert run("int f(void) { return 42; }", "f", opt=opt) == 42

    def test_parameters(self, opt):
        assert run("int f(int a, int b) { return a * 10 + b; }",
                   "f", 4, 2, opt=opt) == 42

    def test_division_semantics(self, opt):
        src = "int f(int a, int b) { return a / b + a % b; }"
        assert run(src, "f", -7, 2, opt=opt) == -3 + -1

    def test_unsigned_arithmetic(self, opt):
        src = "unsigned f(unsigned a) { return a / 2u; }"
        assert run(src, "f", -2, opt=opt) == 0x7FFFFFFF

    def test_bitwise_ops(self, opt):
        src = "int f(int a, int b) { return (a & b) | (a ^ b); }"
        assert run(src, "f", 0b1100, 0b1010, opt=opt) == 0b1110

    def test_shifts(self, opt):
        src = "int f(int a) { return (a << 4) >> 2; }"
        assert run(src, "f", 3, opt=opt) == 12

    def test_comparison_chain(self, opt):
        src = "int f(int a, int b) { return (a < b) + (a <= b) + (a == b); }"
        assert run(src, "f", 3, 3, opt=opt) == 2

    def test_logical_short_circuit(self, opt):
        src = """
        int g;
        int bump(void) { g = g + 1; return 1; }
        int f(int x) { return x && bump(); }
        int get(void) { return g; }
        """
        proc = compile_c(src, static_opt=opt)
        assert proc.static_function("f")(0) == 0
        assert proc.static_function("get")() == 0  # bump never ran
        assert proc.static_function("f")(5) == 1
        assert proc.static_function("get")() == 1

    def test_conditional_expression(self, opt):
        src = "int f(int x) { return x > 0 ? x : -x; }"
        assert run(src, "f", -9, opt=opt) == 9

    def test_negation_and_not(self, opt):
        src = "int f(int x) { return -x + !x + ~x; }"
        assert run(src, "f", 0, opt=opt) == 0 + 1 + -1

    def test_char_truncation(self, opt):
        src = "int f(int x) { return (char)x; }"
        assert run(src, "f", 0x1FF, opt=opt) == -1

    def test_unsigned_char_cast(self, opt):
        src = "int f(int x) { return (unsigned char)x; }"
        assert run(src, "f", -1, opt=opt) == 255


@pytest.mark.parametrize("opt", OPTS)
class TestControlFlow:
    def test_while_loop(self, opt):
        src = """
        int f(int n) {
            int s;
            s = 0;
            while (n > 0) { s = s + n; n = n - 1; }
            return s;
        }
        """
        assert run(src, "f", 100, opt=opt) == 5050

    def test_for_loop_with_break_continue(self, opt):
        src = """
        int f(int n) {
            int i, s;
            s = 0;
            for (i = 0; i < n; i++) {
                if (i == 7) continue;
                if (i == 12) break;
                s = s + i;
            }
            return s;
        }
        """
        assert run(src, "f", 100, opt=opt) == sum(
            i for i in range(12) if i != 7
        )

    def test_do_while(self, opt):
        src = """
        int f(int n) {
            int c;
            c = 0;
            do { c = c + 1; n = n / 2; } while (n);
            return c;
        }
        """
        assert run(src, "f", 0, opt=opt) == 1
        assert run(src, "f", 16, opt=opt) == 5

    def test_nested_loops(self, opt):
        src = """
        int f(int n) {
            int i, j, s;
            s = 0;
            for (i = 0; i < n; i++)
                for (j = 0; j < i; j++)
                    s = s + 1;
            return s;
        }
        """
        assert run(src, "f", 10, opt=opt) == 45

    def test_early_return(self, opt):
        src = """
        int f(int x) {
            if (x < 0) return -1;
            if (x == 0) return 0;
            return 1;
        }
        """
        assert run(src, "f", -5, opt=opt) == -1
        assert run(src, "f", 0, opt=opt) == 0
        assert run(src, "f", 5, opt=opt) == 1


@pytest.mark.parametrize("opt", OPTS)
class TestMemoryAndPointers:
    def test_local_array(self, opt):
        src = """
        int f(int n) {
            int a[10];
            int i, s;
            for (i = 0; i < 10; i++) a[i] = i * i;
            s = 0;
            for (i = 0; i < 10; i++) s = s + a[i];
            return s;
        }
        """
        assert run(src, "f", 0, opt=opt) == sum(i * i for i in range(10))

    def test_pointer_walk(self, opt):
        src = """
        int f(int *p, int n) {
            int s;
            s = 0;
            while (n--) s = s + *p++;
            return s;
        }
        """
        proc = compile_c(src, static_opt=opt)
        addr = proc.machine.memory.alloc_words([1, 2, 3, 4, 5])
        assert proc.static_function("f")(addr, 5) == 15

    def test_address_of_local(self, opt):
        src = """
        void set(int *p, int v) { *p = v; }
        int f(void) {
            int x;
            set(&x, 99);
            return x;
        }
        """
        assert run(src, "f", opt=opt) == 99

    def test_global_variables(self, opt):
        src = """
        int counter = 10;
        int bump(int by) { counter = counter + by; return counter; }
        """
        proc = compile_c(src, static_opt=opt)
        bump = proc.static_function("bump")
        assert bump(5) == 15
        assert bump(1) == 16

    def test_global_array_initializer(self, opt):
        src = """
        int table[4] = {10, 20, 30, 40};
        int f(int i) { return table[i]; }
        """
        assert run(src, "f", 2, opt=opt) == 30

    def test_local_array_initializer(self, opt):
        src = """
        int f(int i) {
            int a[3] = {5, 6, 7};
            return a[i];
        }
        """
        assert run(src, "f", 1, opt=opt) == 6

    def test_char_array_string_ops(self, opt):
        src = """
        int f(char *s) {
            int n;
            n = 0;
            while (s[n]) n++;
            return n;
        }
        """
        proc = compile_c(src, static_opt=opt)
        addr = proc.machine.memory.alloc_cstring("hello!")
        assert proc.static_function("f")(addr) == 6

    def test_memcpy_prelude(self, opt):
        src = """
        int f(int *dst, int *src, int n) {
            memcpy((char *)dst, (char *)src, n * 4);
            return dst[n - 1];
        }
        """
        proc = compile_c(src, static_opt=opt)
        mem = proc.machine.memory
        src_a = mem.alloc_words([7, 8, 9])
        dst_a = mem.alloc_words([0, 0, 0])
        assert proc.static_function("f")(dst_a, src_a, 3) == 9
        assert mem.read_words(dst_a, 3) == [7, 8, 9]

    def test_memset_prelude(self, opt):
        src = """
        int f(char *p, int n) {
            memset(p, 7, n);
            return p[n - 1];
        }
        """
        proc = compile_c(src, static_opt=opt)
        addr = proc.machine.memory.alloc(16)
        assert proc.static_function("f")(addr, 16) == 7


@pytest.mark.parametrize("opt", OPTS)
class TestCallsAndFloats:
    def test_recursive_function(self, opt):
        src = "int fib(int n) { return n < 2 ? n : fib(n-1) + fib(n-2); }"
        assert run(src, "fib", 12, opt=opt) == 144

    def test_mutual_recursion(self, opt):
        src = """
        int is_odd(int n);
        int is_even(int n) { return n == 0 ? 1 : is_odd(n - 1); }
        int is_odd(int n) { return n == 0 ? 0 : is_even(n - 1); }
        """
        assert run(src, "is_even", 10, opt=opt) == 1
        assert run(src, "is_odd", 10, opt=opt) == 0

    def test_function_pointer_call(self, opt):
        src = """
        int dbl(int x) { return 2 * x; }
        int trc(int x) { return 3 * x; }
        int pick(int which, int x) {
            int (*fp)(int);
            fp = which ? dbl : trc;
            return fp(x);
        }
        """
        assert run(src, "pick", 1, 10, opt=opt) == 20
        assert run(src, "pick", 0, 10, opt=opt) == 30

    def test_float_arithmetic(self, opt):
        src = "double f(double a, double b) { return a * b - a / b; }"
        assert run(src, "f", 3.0, 2.0, opt=opt) == 6.0 - 1.5

    def test_int_float_conversion(self, opt):
        src = "double f(int n) { return n / 2 + 0.5; }"
        assert run(src, "f", 7, opt=opt) == 3.5

    def test_float_to_int_truncates(self, opt):
        src = "int f(double x) { return (int)x; }"
        assert run(src, "f", -2.7, opt=opt) == -2

    def test_float_comparisons(self, opt):
        src = "int f(double a, double b) { return (a < b) + 2 * (a == b); }"
        assert run(src, "f", 1.0, 1.0, opt=opt) == 2

    def test_mixed_int_float_params(self, opt):
        src = "double f(int a, double x, int b) { return (a - b) * x; }"
        assert run(src, "f", 10, 0.5, 4, opt=opt) == 3.0

    def test_float_locals_across_calls(self, opt):
        src = """
        double noisy(double x) { return x + 1.0; }
        double f(double a) {
            double keep;
            keep = a * 2.0;
            noisy(a);
            return keep;
        }
        """
        assert run(src, "f", 5.0, opt=opt) == 10.0


class TestOptLevels:
    SRC = """
    int f(int n) {
        int i, s, t;
        s = 0;
        for (i = 0; i < n; i++) {
            t = i * 2;
            s = s + t;
        }
        return s;
    }
    """

    def test_both_levels_agree(self):
        assert run(self.SRC, "f", 50, opt="lcc") == \
            run(self.SRC, "f", 50, opt="gcc")

    def test_gcc_level_not_slower(self):
        results = {}
        for opt in OPTS:
            proc = compile_c(self.SRC, static_opt=opt)
            fn = proc.static_function("f")
            _, cycles = proc.run_cycles(fn, 50)
            results[opt] = cycles
        assert results["gcc"] <= results["lcc"]

    def test_uncompilable_function_reported(self):
        src = "int f(void) { int cspec c = `1; return 0; }"
        proc = compile_c(src)
        with pytest.raises(Exception, match="not statically compiled"):
            proc.static_function("f")

    def test_compilable_set_excludes_dynamic_callers(self):
        src = """
        int dyn(void) { int cspec c = `1; return (int)compile(c, int); }
        int uses_dyn(void) { return dyn(); }
        int pure(int x) { return x + 1; }
        """
        proc = compile_c(src)
        names = proc.compilable_functions()
        assert "pure" in names
        assert "dyn" not in names and "uses_dyn" not in names
