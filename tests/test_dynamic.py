"""End-to-end `C dynamic code generation tests, run on both back ends."""

import pytest

from repro import TccCompiler
from repro.errors import RuntimeTccError, VerifyError
from tests.conftest import BACKENDS, compile_c


def build_and_call(source, builder_args=(), call_args=(), backend="icode",
                   signature=None, returns="i", builder="build", **options):
    proc = compile_c(source, backend=backend, **options)
    entry = proc.run(builder, *builder_args)
    if signature is None:
        signature = "i" * len(call_args)
    fn = proc.function(entry, signature, returns)
    return fn(*call_args)


@pytest.mark.parametrize("backend", BACKENDS)
class TestBasics:
    def test_constant_cspec(self, backend):
        src = "int build(void) { return (int)compile(`42, int); }"
        assert build_and_call(src, backend=backend) == 42

    def test_expression_cspec(self, backend):
        src = "int build(void) { return (int)compile(`(6 * 7), int); }"
        assert build_and_call(src, backend=backend) == 42

    def test_compound_cspec_with_return(self, backend):
        src = """
        int build(void) {
            void cspec c = `{ int x; x = 40; return x + 2; };
            return (int)compile(c, int);
        }
        """
        assert build_and_call(src, backend=backend) == 42

    def test_dollar_binding_snapshot(self, backend):
        # the paper's own example: $x binds at spec time, x reads at run time
        src = """
        int x;
        int build(void) {
            int cspec c;
            x = 1;
            c = `($x * 100 + x);
            x = 14;
            return (int)compile(c, int);
        }
        """
        assert build_and_call(src, backend=backend) == 100 + 14

    def test_parameterized_function(self, backend):
        src = """
        int build(void) {
            int vspec a = param(int, 0);
            int vspec b = param(int, 1);
            return (int)compile(`(a * 10 + b), int);
        }
        """
        assert build_and_call(src, call_args=(4, 2), backend=backend) == 42

    def test_free_variable_read_and_write(self, backend):
        src = """
        int build(int *out) {
            int x;
            void cspec c;
            x = 5;
            c = `{ x = x + 1; return x; };
            return (int)compile(c, int);
        }
        """
        proc = compile_c(src, backend=backend)
        entry = proc.run("build", 0)
        fn = proc.function(entry, "", "i")
        assert fn() == 6
        assert fn() == 7  # the free variable persists between runs

    def test_double_return(self, backend):
        src = """
        int build(void) {
            double vspec x = param(double, 0);
            return (int)compile(`(x * 2.5), double);
        }
        """
        assert build_and_call(src, call_args=(4.0,), backend=backend,
                              signature="f", returns="f") == 10.0

    def test_void_compile(self, backend):
        src = """
        int g;
        int build(void) {
            void cspec c = `{ g = 99; };
            return (int)compile(c, void);
        }
        int readg(void) { return g; }
        """
        proc = compile_c(src, backend=backend)
        entry = proc.run("build")
        proc.function(entry, "", "v")()
        assert proc.run("readg") == 99


@pytest.mark.parametrize("backend", BACKENDS)
class TestComposition:
    def test_simple_composition(self, backend):
        # the paper's 4+5 example
        src = """
        int build(void) {
            int cspec c1 = `4, cspec c2 = `5;
            int cspec c = `(c1 + c2);
            return (int)compile(c, int);
        }
        """
        assert build_and_call(src, backend=backend) == 9

    def test_composition_chain(self, backend):
        src = """
        int build(int n) {
            int i;
            int cspec c = `0;
            for (i = 1; i <= n; i++)
                c = `(c + $i);
            return (int)compile(c, int);
        }
        """
        assert build_and_call(src, (10,), backend=backend) == 55

    def test_statement_composition(self, backend):
        src = """
        int build(void) {
            int vspec s = local(int);
            void cspec body = `{ s = 1; };
            body = `{ body; s = s * 10; };
            body = `{ body; s = s + 2; };
            return (int)compile(`{ body; return s; }, int);
        }
        """
        assert build_and_call(src, backend=backend) == 12

    def test_vspec_shared_across_cspecs(self, backend):
        src = """
        int build(void) {
            int vspec v = local(int);
            void cspec set = `{ v = 21; };
            int cspec dbl = `(v * 2);
            return (int)compile(`{ set; return dbl; }, int);
        }
        """
        assert build_and_call(src, backend=backend) == 42

    def test_same_cspec_composed_twice_inlines_twice(self, backend):
        src = """
        int g;
        int build(void) {
            void cspec bump = `{ g = g + 1; };
            return (int)compile(`{ bump; bump; return g; }, int);
        }
        """
        assert build_and_call(src, backend=backend) == 2

    def test_cspec_passed_through_function(self, backend):
        src = """
        int cspec wrap(int cspec inner) {
            return `(inner * 2);
        }
        int build(void) {
            int cspec c = wrap(`21);
            return (int)compile(c, int);
        }
        """
        assert build_and_call(src, backend=backend) == 42

    def test_unspecified_cspec_rejected_at_compile_time(self, backend):
        # The tick lint (repro.verify.ticklint) reports this statically.
        src = """
        int build(void) {
            int cspec c;
            int cspec d = `(c + 1);
            return (int)compile(d, int);
        }
        """
        with pytest.raises(VerifyError, match="cspec-use-before-specify"):
            compile_c(src, backend=backend)

    def test_unspecified_cspec_fails_cleanly(self, backend):
        # With verification off, the bug still fails cleanly at run time.
        src = """
        int build(void) {
            int cspec c;
            int cspec d = `(c + 1);
            return (int)compile(d, int);
        }
        """
        proc = TccCompiler(verify="off").compile(src).start(
            backend=backend, verify="off")
        with pytest.raises(RuntimeTccError, match="composed before"):
            proc.run("build")


@pytest.mark.parametrize("backend", BACKENDS)
class TestPartialEvaluation:
    def test_runtime_constant_folding(self, backend):
        src = """
        int build(int a, int b) {
            return (int)compile(`($a * $b + 2), int);
        }
        """
        assert build_and_call(src, (6, 7), backend=backend) == 44

    def test_unrolled_loop(self, backend):
        src = """
        int build(int n) {
            void cspec c = `{
                int k, s;
                s = 0;
                for (k = 0; k < $n; k++)
                    s = s + k;
                return s;
            };
            return (int)compile(c, int);
        }
        """
        assert build_and_call(src, (10,), backend=backend) == 45

    def test_unrolled_loop_body_has_no_branches(self, backend):
        src = """
        int build(int n) {
            void cspec c = `{
                int k, s;
                s = 0;
                for (k = 0; k < $n; k++)
                    s = s + k;
                return s;
            };
            return (int)compile(c, int);
        }
        """
        proc = compile_c(src, backend=backend, compile_static=False)
        proc.run("build", 8)
        from repro.target.isa import Op

        ops = [i.op for i in proc.machine.code.instructions]
        assert Op.BEQZ not in ops and Op.BNEZ not in ops

    def test_emission_time_dead_code(self, backend):
        src = """
        int row[4] = {1, 0, 3, 0};
        int build(int n) {
            void cspec c = `{
                int k, s;
                s = 0;
                for (k = 0; k < $n; k++)
                    if ($row[k])
                        s = s + $row[k];
                return s;
            };
            return (int)compile(c, int);
        }
        """
        assert build_and_call(src, (4,), backend=backend) == 4

    def test_strength_reduced_multiply(self, backend):
        src = """
        int build(int c) {
            int vspec x = param(int, 0);
            return (int)compile(`(x * $c), int);
        }
        """
        proc = compile_c(src, backend=backend)
        entry = proc.run("build", 12)  # 12 = 8 + 4: two shifts + add
        fn = proc.function(entry, "i", "i")
        assert fn(5) == 60
        from repro.target.isa import Op

        ops = [i.op for i in proc.machine.code.instructions[entry:]]
        assert Op.MULI not in ops and Op.MUL not in ops

    def test_multiply_by_zero_folds_away(self, backend):
        src = """
        int build(int c) {
            int vspec x = param(int, 0);
            return (int)compile(`(x * $c + 7), int);
        }
        """
        assert build_and_call(src, (0,), call_args=(123,),
                              backend=backend) == 7

    def test_division_by_power_of_two(self, backend):
        src = """
        int build(int c) {
            unsigned vspec x = param(unsigned, 0);
            return (int)compile(`((int)(x / (unsigned)$c)), int);
        }
        """
        assert build_and_call(src, (8,), call_args=(100,),
                              backend=backend) == 12

    def test_signed_division_by_power_of_two(self, backend):
        src = """
        int build(int c) {
            int vspec x = param(int, 0);
            return (int)compile(`(x / $c), int);
        }
        """
        proc = compile_c(src, backend=backend)
        fn = proc.function(proc.run("build", 4), "i", "i")
        assert fn(100) == 25
        assert fn(-100) == -25  # C semantics: truncation toward zero

    def test_nested_unroll_with_derived_bound(self, backend):
        src = """
        int build(int n) {
            void cspec c = `{
                int i, j, s;
                s = 0;
                for (i = 0; i < $n; i++)
                    for (j = 0; j <= i; j++)
                        s = s + 1;
                return s;
            };
            return (int)compile(c, int);
        }
        """
        assert build_and_call(src, (5,), backend=backend) == 15

    def test_emission_dollar_reads_memory_at_instantiation(self, backend):
        src = """
        int data[3] = {10, 20, 30};
        int build(int n) {
            void cspec c = `{
                int k, s;
                s = 0;
                for (k = 0; k < $n; k++)
                    s = s + $data[k];
                return s;
            };
            return (int)compile(c, int);
        }
        """
        assert build_and_call(src, (3,), backend=backend) == 60


@pytest.mark.parametrize("backend", BACKENDS)
class TestDynamicControlFlow:
    def test_dynamic_while_loop(self, backend):
        src = """
        int build(void) {
            int vspec n = param(int, 0);
            void cspec c = `{
                int s;
                s = 0;
                while (n > 0) { s = s + n; n = n - 1; }
                return s;
            };
            return (int)compile(c, int);
        }
        """
        assert build_and_call(src, call_args=(10,), backend=backend) == 55

    def test_dynamic_break_continue(self, backend):
        src = """
        int build(void) {
            int vspec n = param(int, 0);
            void cspec c = `{
                int i, s;
                s = 0;
                for (i = 0; i < n; i++) {
                    if (i == 3) continue;
                    if (i == 8) break;
                    s = s + i;
                }
                return s;
            };
            return (int)compile(c, int);
        }
        """
        expected = sum(i for i in range(8) if i != 3)
        assert build_and_call(src, call_args=(100,), backend=backend) == expected

    def test_dynamic_code_calls_static_function(self, backend):
        src = """
        int helper(int x) { return x * 3; }
        int build(void) {
            int vspec a = param(int, 0);
            return (int)compile(`(helper(a) + 1), int);
        }
        """
        assert build_and_call(src, call_args=(5,), backend=backend) == 16

    def test_dynamic_code_calls_through_pointer(self, backend):
        src = """
        int helper(int x) { return x - 1; }
        int build(void) {
            int (*fp)(int);
            int vspec a = param(int, 0);
            fp = helper;
            return (int)compile(`(($fp)(a)), int);
        }
        """
        assert build_and_call(src, call_args=(10,), backend=backend) == 9

    def test_two_generated_functions_coexist(self, backend):
        src = """
        int build(int which) {
            int vspec x = param(int, 0);
            if (which)
                return (int)compile(`(x + 1), int);
            return (int)compile(`(x * 2), int);
        }
        """
        proc = compile_c(src, backend=backend)
        inc = proc.function(proc.run("build", 1), "i", "i")
        dbl = proc.function(proc.run("build", 0), "i", "i")
        assert inc(10) == 11
        assert dbl(10) == 20
        assert inc(1) == 2  # first function still intact

    def test_generated_function_calls_generated_function(self, backend):
        src = """
        int build_inner(void) {
            int vspec x = param(int, 0);
            return (int)compile(`(x * 2), int);
        }
        int build_outer(int inner) {
            int vspec y = param(int, 0);
            int (*fp)(int);
            fp = (int (*)(int))inner;
            return (int)compile(`(($fp)(y) + 1), int);
        }
        """
        proc = compile_c(src, backend=backend)
        inner = proc.run("build_inner")
        outer = proc.run("build_outer", inner)
        fn = proc.function(outer, "i", "i")
        assert fn(10) == 21

    def test_push_apply_dynamic_call(self, backend):
        src = """
        int sum3(int a, int b, int c) { return a + b + c; }
        int build(int n) {
            int i;
            int cspec call;
            push_init();
            for (i = 1; i <= n; i++)
                push(`($i * 10));
            call = apply(sum3);
            return (int)compile(`{ return call; }, int);
        }
        """
        assert build_and_call(src, (3,), backend=backend) == 60


@pytest.mark.parametrize("backend", BACKENDS)
class TestCodegenAccounting:
    def test_stats_recorded_per_compile(self, backend):
        src = "int build(void) { return (int)compile(`(1 + 2), int); }"
        proc = compile_c(src, backend=backend)
        proc.run("build")
        stats = proc.last_codegen_stats
        assert stats is not None
        assert stats.generated_instructions > 0
        assert stats.total_cycles() > 0

    def test_icode_charges_regalloc(self, backend):
        if backend != "icode":
            pytest.skip("ICODE only")
        from repro.runtime.costmodel import Phase

        src = "int build(void) { return (int)compile(`(1 + 2), int); }"
        proc = compile_c(src, backend=backend)
        proc.run("build")
        assert proc.last_codegen_stats.cycles[Phase.REGALLOC] > 0

    def test_vcode_charges_emit_only(self, backend):
        if backend != "vcode":
            pytest.skip("VCODE only")
        from repro.runtime.costmodel import Phase

        src = "int build(void) { return (int)compile(`(1 + 2), int); }"
        proc = compile_c(src, backend=backend)
        proc.run("build")
        stats = proc.last_codegen_stats
        assert stats.cycles[Phase.EMIT] > 0
        assert stats.cycles[Phase.REGALLOC] == 0

    def test_closure_cost_charged_at_spec_time(self, backend):
        from repro.runtime.costmodel import Phase

        src = """
        int build(int x) {
            int cspec c = `($x + 1);
            return (int)compile(c, int);
        }
        """
        proc = compile_c(src, backend=backend)
        proc.run("build", 1)
        assert proc.last_codegen_stats.cycles[Phase.CLOSURE] > 0
