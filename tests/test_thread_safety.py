"""Concurrency hammer tests for the shared-state primitives the serving
engine leans on: the metrics registry, the code segment's invalidation
listener list, and the Tier-2 template store."""

from __future__ import annotations

import threading

from repro import TccCompiler
from repro.serving.store import TemplateStore
from repro.target.program import CodeSegment
from repro.telemetry.metrics import MetricsRegistry

THREADS = 8
ROUNDS = 400


def _hammer(worker, n_threads=THREADS):
    errors = []

    def run(i):
        try:
            worker(i)
        except BaseException as exc:      # pragma: no cover
            errors.append(exc)

    threads = [threading.Thread(target=run, args=(i,))
               for i in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors


class TestMetricsRegistry:
    def test_counter_increments_are_exact(self):
        reg = MetricsRegistry()

        def worker(_i):
            c = reg.counter("hammer.count")
            for _ in range(ROUNDS):
                c.inc()
        _hammer(worker)
        assert reg.counter("hammer.count").value == THREADS * ROUNDS

    def test_labeled_counter_is_exact_per_label(self):
        reg = MetricsRegistry()

        def worker(i):
            lc = reg.labeled("hammer.labeled")
            for r in range(ROUNDS):
                lc.inc(f"label-{r % 4}")
        _hammer(worker)
        snap = reg.labeled("hammer.labeled").snapshot()
        assert sum(snap.values()) == THREADS * ROUNDS
        assert all(v == THREADS * ROUNDS // 4 for v in snap.values())

    def test_histogram_count_and_sum_are_exact(self):
        reg = MetricsRegistry()
        bounds = (10, 100, 1000)

        def worker(i):
            h = reg.histogram("hammer.hist", bounds)
            for r in range(ROUNDS):
                h.record(r)
        _hammer(worker)
        snap = reg.histogram("hammer.hist", bounds).snapshot()
        assert snap["count"] == THREADS * ROUNDS
        assert snap["sum"] == THREADS * sum(range(ROUNDS))

    def test_concurrent_merge_into_one_registry(self):
        # Sessions roll their private registries up on close; closes can
        # race each other.
        target = MetricsRegistry()

        def worker(i):
            local = MetricsRegistry()
            local.counter("rollup.count").inc(ROUNDS)
            local.labeled("rollup.labeled").inc("x", i + 1)
            target.merge(local)
        _hammer(worker)
        assert target.counter("rollup.count").value == THREADS * ROUNDS
        labeled = target.labeled("rollup.labeled").snapshot()
        assert labeled["x"] == sum(range(1, THREADS + 1))


class TestInvalidationListeners:
    def test_add_remove_notify_race(self):
        """Threads adding/removing listeners while others fire events:
        no lost registrations, no exceptions from mutation-during-
        iteration (the listener tuple is copy-on-write)."""
        seg = CodeSegment()
        hits = [0] * THREADS
        lock = threading.Lock()

        def worker(i):
            def listener(kind, length, _i=i):
                with lock:
                    hits[_i] += 1
            for _ in range(ROUNDS // 4):
                seg.add_invalidation_listener(listener)
                seg.inject_emit_failure(10**9)   # notifies ("fault", None)
                seg.remove_invalidation_listener(listener)
        _hammer(worker)
        seg._fail_emit_in = None
        # Each thread observed at least its own notifications.
        assert all(h >= ROUNDS // 4 for h in hits)
        # And every listener was removed again.
        assert not seg._invalidation_listeners

    def test_remove_unknown_listener_is_a_noop(self):
        seg = CodeSegment()
        seg.remove_invalidation_listener(lambda kind, length: None)


class TestTemplateStore:
    def _templates(self, count):
        """Harvest real (shape_key, CodeTemplate) pairs by compiling
        distinct closures."""
        source = """
        int make_adder(int n) {
            int vspec p = param(int, 0);
            return (int)compile(`($n + p), int);
        }
        """
        process = TccCompiler().compile(source).start()
        out = []
        for n in range(count):
            process.run("make_adder", n)
        for shape, bucket in process.codecache._templates.items():
            for template in bucket:
                out.append((shape, template))
        return out

    def test_concurrent_add_match_evict(self):
        pairs = self._templates(4)
        assert pairs
        # A cap large enough that the LRU pop never fires: every add is
        # then balanced by exactly one successful evict.
        store = TemplateStore(templates_per_shape=10**6)

        def worker(i):
            for _ in range(ROUNDS // 4):
                for shape, template in pairs:
                    store.add(shape, template)
                    store.evict(shape, template)
        _hammer(worker)
        assert store.stats()["templates"] == 0

    def test_slow_guard_evaluation_does_not_hold_the_stripe_lock(self):
        """A session blocked evaluating guards inside ``match`` (its data
        memory is slow) must not stall another session's ``add`` on the
        same shape key: candidates are snapshotted under the stripe lock
        and guards evaluated outside it."""

        class _Template:
            guards = ((0, "w", 1),)
            callees = ()
            instructions = []

            def matches(self, signature):
                return True

            def verify_integrity(self):
                return True

            def links_into(self, segment):
                return True

        class _Signature:
            shape_key = ("slow-shape",)
            persistable = False

        class _SlowMemory:
            """load_word blocks until released, then fails the guard."""

            def __init__(self):
                self.entered = threading.Event()
                self.release = threading.Event()

            def load_word(self, addr):
                self.entered.set()
                assert self.release.wait(timeout=10), "memory never released"
                return 0

        store = TemplateStore()
        store.add(_Signature.shape_key, _Template())
        memory = _SlowMemory()
        matcher = threading.Thread(
            target=store.match, args=(_Signature(), memory))
        matcher.start()
        try:
            assert memory.entered.wait(timeout=10)
            # The matcher is parked inside guard evaluation.  An add on
            # the same shape key (hence the same stripe) must complete.
            adder = threading.Thread(
                target=store.add, args=(_Signature.shape_key, _Template()))
            adder.start()
            adder.join(timeout=5)
            assert not adder.is_alive(), \
                "store.add blocked behind a slow guard evaluation"
        finally:
            memory.release.set()
            matcher.join(timeout=10)
        assert not matcher.is_alive()
        assert store.stats()["templates"] == 2

    def test_stripes_partition_shapes(self):
        store = TemplateStore(stripes=4)
        pairs = self._templates(3)
        for signature, template in pairs:
            store.add(signature, template)
        assert store.stats()["templates"] == len(pairs)
        store.clear()
        assert store.stats()["templates"] == 0


class TestObservabilityPlane:
    def test_scrape_while_serving_hammer(self):
        """8 threads — half serving real requests, half scraping the
        OpenMetrics exposition, SLO status, and flight-recorder bundles
        concurrently: every scrape must parse and validate cleanly and
        no serving request may fail."""
        from repro.obs import workload
        from repro.obs.openmetrics import parse, render, validate
        from repro.serving.engine import Engine

        engine = Engine(workload.PROGRAM)
        done = threading.Event()
        servers = THREADS // 2
        served = [0] * servers
        failures = []

        def serve(i):
            with engine.session(f"hammer-{i}") as session:
                for outcome in workload.replay(
                        session, workload.generate(25, seed=i)):
                    if not outcome.ok:
                        failures.append(outcome.error)
                    served[i] += 1

        def scrape(_i):
            while not done.is_set():
                problems = validate(parse(render()))
                assert problems == [], problems
                status = engine.slo.status()
                assert status.observed >= 0
                bundle = engine.recorder.bundle()
                assert bundle["recorded_total"] >= len(bundle["records"])

        finished = []

        def worker(i):
            if i < servers:
                try:
                    serve(i)
                finally:
                    finished.append(i)
                    if len(finished) == servers:
                        done.set()       # unparks scrapers even on error
            else:
                scrape(i)

        try:
            _hammer(worker)
        finally:
            done.set()
        assert not failures, failures
        assert engine.slo.status().observed == servers * 25
        assert engine.recorder.bundle()["recorded_total"] == servers * 25
