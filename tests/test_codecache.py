"""The specialization cache (repro.core.codecache): Tier-1 memoization,
the Tier-2 copy-and-patch template fast path, certification (pinning) of
specialization-steering values, guards, and invalidation."""

import pytest

from repro import report
from repro.core.codecache import (
    CacheEntry,
    CodeCache,
    PatchImm,
    _guards_hold,
)
from repro.errors import VerifyError
from repro.runtime.costmodel import Phase
from repro.serving.store import TemplateStore
from repro.target.memory import Memory
from repro.telemetry.metrics import REGISTRY
from tests.conftest import BACKENDS, compile_c

ADDER = """
int build(int n) {
    int vspec p = param(int, 0);
    return (int)compile(`($n + p), int);
}
"""

FADDER = """
int build(double x) {
    double vspec p = param(double, 0);
    return (int)compile(`($x + p), double);
}
"""

COND = """
int build(int n) {
    int vspec p = param(int, 0);
    return (int)compile(`($n ? p + 1 : p - 1), int);
}
"""

UNROLL = """
int build(int n) {
    int vspec p = param(int, 0);
    return (int)compile(`{
        int k, s;
        s = 0;
        for (k = 0; k < $n; k++) s = s + p;
        return s;
    }, int);
}
"""

DYNLOOP = """
int build(int n) {
    int vspec p = param(int, 0);
    return (int)compile(`{
        int i, s;
        s = 0;
        for (i = 0; i < $n; i = i + 1) s = s + p;
        return s;
    }, int);
}
"""


def _stats(proc):
    return report.cache_stats()


@pytest.mark.parametrize("backend", BACKENDS)
class TestTier1Memoization:
    def test_same_key_returns_identical_entry(self, backend):
        report.reset()
        proc = compile_c(ADDER, backend=backend)
        e1 = proc.run("build", 10)
        e2 = proc.run("build", 10)
        assert e1 == e2
        assert proc.function(e2, "i", "i")(5) == 15
        assert report.cache_stats()["hits"] == 1

    def test_warm_hit_charges_zero_backend_cycles(self, backend):
        report.reset()
        proc = compile_c(ADDER, backend=backend)
        proc.run("build", 10)
        proc.run("build", 10)
        stats = proc.last_codegen_stats
        # only the cache probe is charged: no emission, IR, regalloc,
        # translation, or linking work at all
        for phase in (Phase.EMIT, Phase.IR, Phase.FLOWGRAPH, Phase.LIVENESS,
                      Phase.INTERVALS, Phase.REGALLOC, Phase.TRANSLATE,
                      Phase.LINK, Phase.PATCH):
            assert stats.cycles.get(phase, 0) == 0
        assert stats.events[(Phase.CLOSURE, "cache_probe")] == 1
        assert stats.generated_instructions == 0

    def test_different_dollar_values_never_alias(self, backend):
        report.reset()
        proc = compile_c(ADDER, backend=backend)
        e1 = proc.run("build", 10)
        e2 = proc.run("build", 42)
        assert e1 != e2
        assert proc.function(e1, "i", "i")(1) == 11
        assert proc.function(e2, "i", "i")(1) == 43
        assert report.cache_stats()["hits"] == 0

    def test_cache_can_be_disabled(self, backend):
        report.reset()
        proc = compile_c(ADDER, backend=backend, codecache=False)
        e1 = proc.run("build", 10)
        e2 = proc.run("build", 10)
        assert e1 != e2
        stats = report.cache_stats()
        assert stats["hits"] == 0 and stats["misses"] == 0


@pytest.mark.parametrize("backend", BACKENDS)
class TestTier2Templates:
    def test_patched_instantiation_executes_identically(self, backend):
        report.reset()
        proc = compile_c(ADDER, backend=backend)
        proc.run("build", 10)                   # cold: captures a template
        entry = proc.run("build", 42)           # patchable binding change
        assert report.cache_stats()["patched"] == 1
        cold = compile_c(ADDER, backend=backend, codecache=False)
        cold_entry = cold.run("build", 42)
        f_patched = proc.function(entry, "i", "i")
        f_cold = cold.function(cold_entry, "i", "i")
        for arg in (0, 1, -7, 1 << 20):
            assert f_patched(arg) == f_cold(arg)

    def test_patched_body_matches_cold_op_sequence(self, backend):
        report.reset()
        proc = compile_c(ADDER, backend=backend)
        e1 = proc.run("build", 10)
        end1 = len(proc.machine.code.instructions)
        e2 = proc.run("build", 42)
        body1 = proc.machine.code.instructions[e1:end1]
        body2 = proc.machine.code.instructions[e2:e2 + len(body1)]
        assert [i.op for i in body1] == [i.op for i in body2]

    def test_patched_float_binding(self, backend):
        report.reset()
        proc = compile_c(FADDER, backend=backend)
        e1 = proc.run("build", 1.5)
        e2 = proc.run("build", -2.25)
        assert report.cache_stats()["patched"] == 1
        assert proc.function(e1, "f", "f")(1.0) == 2.5
        assert proc.function(e2, "f", "f")(1.0) == -1.25

    def test_patch_reports_bytes_and_cycles_saved(self, backend):
        report.reset()
        proc = compile_c(ADDER, backend=backend)
        proc.run("build", 10)
        proc.run("build", 42)
        stats = report.cache_stats()
        assert stats["patched"] == 1
        assert stats["patched_bytes"] >= 4
        assert stats["cycles_saved"] > 0

    def test_branch_steering_dollar_is_pinned(self, backend):
        # $n folds the conditional at emission time: its origin is pinned,
        # so a different truthiness recompiles instead of mispatching
        report.reset()
        proc = compile_c(COND, backend=backend)
        e1 = proc.run("build", 1)
        e2 = proc.run("build", 0)
        assert report.cache_stats()["patched"] == 0
        assert proc.function(e1, "i", "i")(10) == 11
        assert proc.function(e2, "i", "i")(10) == 9

    def test_unrolling_bound_dollar_is_pinned(self, backend):
        # $n is a loop-unrolling bound (the loop body is emitted $n times
        # with no branches): patching it would miscount, so its origin is
        # pinned and the second instantiation recompiles cold
        report.reset()
        proc = compile_c(UNROLL, backend=backend)
        e1 = proc.run("build", 3)
        from repro.target.isa import Op

        body = proc.machine.code.instructions[e1:]
        assert not any(i.op in (Op.BEQZ, Op.BNEZ) for i in body)
        e2 = proc.run("build", 5)
        assert report.cache_stats()["patched"] == 0
        assert proc.function(e1, "i", "i")(7) == 21
        assert proc.function(e2, "i", "i")(7) == 35

    def test_dynamic_loop_bound_is_patchable(self, backend):
        # the same loop written so it runs dynamically keeps $n as a plain
        # comparison immediate — patching it is sound and must be exact
        report.reset()
        proc = compile_c(DYNLOOP, backend=backend)
        e1 = proc.run("build", 3)
        e2 = proc.run("build", 5)
        assert report.cache_stats()["patched"] == 1
        assert proc.function(e1, "i", "i")(7) == 21
        assert proc.function(e2, "i", "i")(7) == 35

    def test_strength_reduction_dollar_is_pinned(self, backend):
        # p * $n lowers to a value-dependent shift/add sequence: the
        # multiplier's origin is pinned, so a new value recompiles
        src = """
        int build(int n) {
            int vspec p = param(int, 0);
            return (int)compile(`(p * $n), int);
        }
        """
        report.reset()
        proc = compile_c(src, backend=backend)
        e1 = proc.run("build", 8)   # power of two: a plain shift
        e2 = proc.run("build", 7)   # shift-and-subtract pattern
        assert report.cache_stats()["patched"] == 0
        assert proc.function(e1, "i", "i")(3) == 24
        assert proc.function(e2, "i", "i")(3) == 21

    def test_templates_can_be_disabled_separately(self, backend):
        report.reset()
        proc = compile_c(ADDER, backend=backend, code_templates=False)
        e1 = proc.run("build", 10)
        e2 = proc.run("build", 10)   # Tier 1 still works
        e3 = proc.run("build", 42)   # but no patching
        assert e1 == e2 and e1 != e3
        stats = report.cache_stats()
        assert stats["hits"] == 1 and stats["patched"] == 0


@pytest.mark.parametrize("backend", BACKENDS)
class TestInvalidation:
    def test_segment_rollback_invalidates(self, backend):
        report.reset()
        proc = compile_c(ADDER, backend=backend)
        proc.machine.code.mark()
        proc.run("build", 10)
        assert proc.codecache.stats()["memo_entries"] == 1
        proc.machine.code.release()  # discards the installed body
        assert proc.codecache.stats()["memo_entries"] == 0
        assert proc.codecache.stats()["templates"] == 0
        entry = proc.run("build", 10)  # recompiles cold, correctly
        assert proc.function(entry, "i", "i")(5) == 15
        assert report.cache_stats()["misses"] == 2

    def test_fault_injection_invalidates(self, backend):
        report.reset()
        proc = compile_c(ADDER, backend=backend)
        e1 = proc.run("build", 10)
        assert proc.codecache.stats()["memo_entries"] == 1
        proc.machine.code.inject_emit_failure(100_000)  # armed, never fires
        assert proc.codecache.stats()["memo_entries"] == 0
        e2 = proc.run("build", 10)
        assert e1 != e2
        assert proc.function(e2, "i", "i")(5) == 15


class TestGuards:
    def test_guards_hold_checks_memory(self):
        mem = Memory()
        addr = mem.alloc(8)
        mem.store_word(addr, 7)
        assert _guards_hold([(addr, "w", 7)], mem)
        assert not _guards_hold([(addr, "w", 8)], mem)
        assert not _guards_hold([(0, "w", 7)], mem)  # trapping read = stale

    def test_stale_guard_evicts_memo_entry(self):
        mem = Memory()
        addr = mem.alloc(8)
        mem.store_word(addr, 7)
        cache = CodeCache()

        class Sig:
            key = ("shape", "values")
            shape_key = "shape"

        cache._memo[Sig.key] = CacheEntry(99, 100, [(addr, "w", 7)], 0)
        assert cache.lookup(Sig, mem).entry == 99
        mem.store_word(addr, 8)  # the guarded value changed
        assert cache.lookup(Sig, mem) is None
        assert Sig.key not in cache._memo  # stale entry evicted


class TestSignature:
    def test_patchimm_is_transparent(self):
        v = PatchImm(7, origin=3, scale=2, addend=1)
        assert v == 7 and v + 1 == 8 and int(v) == 7
        assert not isinstance(v + 1, PatchImm)  # arithmetic strips the tag

    def test_signature_distinguishes_float_and_int(self):
        # value keys must not conflate 1 and 1.0 (or -0.0 and 0.0)
        from repro.runtime.closures import ClosureSignature

        a = ClosureSignature(("s",), (1,), {})
        b = ClosureSignature(("s",), (1.0,), {})
        c = ClosureSignature(("s",), (-0.0,), {})
        d = ClosureSignature(("s",), (0.0,), {})
        assert a.key != b.key
        assert c.key != d.key


class TestTransactionalClone:
    """Tier-2 clone installation is audit-then-publish: nothing a fault
    interrupts mid-clone may ever become callable."""

    def test_emit_fault_mid_clone_rolls_back_and_recovers(self):
        # Store-backed, so arming the fault (which conservatively drops
        # the session-local cache) leaves the shared template alive and
        # the clone path is actually taken.
        store = TemplateStore()
        proc = compile_c(ADDER, template_store=store)
        proc.run("build", 10)                       # cold: donates a template
        assert store.stats()["templates"] == 1
        before = len(proc.machine.code.instructions)
        proc.machine.code.inject_emit_failure(3)    # fires mid-clone
        entry = proc.run("build", 42)
        # The half-emitted clone was rolled back and the request
        # recovered with a cold compile of correct code.
        assert proc.function(entry, "i", "i")(1) == 43
        assert len(proc.machine.code.instructions) > before
        assert proc.machine.code._fail_emit_in is None  # fault consumed

    def test_unexpected_crash_mid_clone_rolls_back(self, monkeypatch):
        report.reset()
        proc = compile_c(ADDER)
        proc.run("build", 10)
        seg = proc.machine.code
        before = len(seg.instructions)

        def crash(self, template, signature, machine, cost):
            machine.code.emit(template.instructions[0])   # partial body...
            raise RuntimeError("boom mid-clone")

        monkeypatch.setattr(CodeCache, "instantiate_template", crash)
        with pytest.raises(RuntimeError, match="boom mid-clone"):
            proc.run("build", 42)
        # The partial instruction is gone; nothing was published.
        assert len(seg.instructions) == before
        monkeypatch.undo()
        entry = proc.run("build", 42)
        assert proc.function(entry, "i", "i")(1) == 43

    def test_truncated_clone_is_caught_even_with_verify_off(self, monkeypatch):
        # The template audit is the publish gate: it runs regardless of
        # the verify mode, so a short clone can never go live.
        proc = compile_c(ADDER, verify="off")
        proc.run("build", 10)
        seg = proc.machine.code

        def short(self, template, signature, machine, cost):
            entry = machine.code.here
            for src in template.instructions[:len(template.instructions) // 2]:
                machine.code.emit(src)
            return entry

        monkeypatch.setattr(CodeCache, "instantiate_template", short)
        before = len(seg.instructions)
        with pytest.raises(VerifyError):
            proc.run("build", 42)
        assert len(seg.instructions) == before      # unpublished

    def test_poisoned_template_is_evicted_and_recompiled(self):
        report.reset()
        proc = compile_c(ADDER)
        proc.run("build", 10)
        assert proc.codecache.tamper_first()
        poisoned_before = REGISTRY.counter("cache.poisoned_evictions").value
        entry = proc.run("build", 42)
        # The checksum caught the tampered body before any clone: the
        # template was evicted and the request recompiled cold.
        assert proc.function(entry, "i", "i")(1) == 43
        poisoned = REGISTRY.counter("cache.poisoned_evictions").value
        assert poisoned == poisoned_before + 1
        assert proc.codecache.stats()["templates"] == 1  # fresh replacement

    def test_poisoned_shared_template_is_evicted(self):
        store = TemplateStore()
        proc = compile_c(ADDER, template_store=store)
        proc.run("build", 10)
        assert store.tamper_first()
        poisoned_before = REGISTRY.counter("cache.poisoned_evictions").value
        entry = proc.run("build", 42)
        assert proc.function(entry, "i", "i")(1) == 43
        poisoned = REGISTRY.counter("cache.poisoned_evictions").value
        assert poisoned == poisoned_before + 1
