"""Differential tests: the compiled engines vs the reference stepper.

The block engine and the tiered engine (the default) must be observably
identical to the reference interpreter: same results, same registers,
same memory image, same modeled cycle counts, and the same trap
taxonomy.  The one licensed divergence is *bounded watchdog overshoot*:
a cycle-budget trap may be raised at a block (or trace) boundary rather
than mid-block, so its pc/cycles may sit up to one block — or one trace
— past the reference's trap point; but whether a run traps at all must
match the reference exactly.  The tiered differentials run with
``hot_threshold=2`` so promotions (and the traces they install) happen
mid-run, under the same programs the reference executes.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import report
from repro.apps.table1 import TABLE1_ROWS
from repro.errors import (
    CycleBudgetExceeded,
    IllegalInstruction,
    MachineError,
    SegmentationFault,
    UnalignedAccess,
)
from repro.target.cpu import ENGINES, ICache, Machine
from repro.target.dispatch import MAX_BLOCK_INSTRUCTIONS
from repro.target.isa import CYCLE_COST, Instruction, Op, Reg
from tests.conftest import compile_c
from tests.test_program_properties import programs


#: A hair-trigger promotion policy so even short differential programs
#: exercise trace formation mid-run.
HOT2 = {"hot_threshold": 2}


def _run_both(instrs, args=(), fuel=100_000, hosts=(), icache=False,
              tiering=HOT2):
    """Assemble the same program into one machine per engine and run it.

    Returns ``{engine: outcome}`` where a successful outcome is
    ``("ok", rv, cycles)`` and a trapping one is
    ``("trap", trap_class_name, trap, cycles)``.
    """
    out = {}
    for engine in ENGINES:
        machine = Machine(fuel=fuel, engine=engine,
                          icache=ICache() if icache else None,
                          tiering=tiering)
        for name, fn in hosts:
            machine.register_host_function(name, fn)
        entry = machine.code.extend(list(instrs))
        machine.code.link()
        try:
            rv = machine.call(entry, args)
            out[engine] = ("ok", rv, machine.cpu.cycles)
        except MachineError as trap:
            out[engine] = ("trap", type(trap).__name__, trap,
                           machine.cpu.cycles)
    return out


def _assert_same_trap(outcomes, expected_type):
    ref = outcomes["reference"]
    assert ref[0] == "trap", outcomes
    assert ref[1] == expected_type.__name__
    for engine in ("block", "tiered"):
        got = outcomes[engine]
        assert got[0] == "trap", (engine, outcomes)
        assert got[1] == expected_type.__name__
        e_trap, r_trap = got[2], ref[2]
        assert str(e_trap) == str(r_trap), engine
        assert e_trap.pc == r_trap.pc, engine
        assert e_trap.instr == r_trap.instr, engine
        assert got[3] == ref[3], engine    # cycles charged up to the trap


# -- whole generated programs ---------------------------------------------------

@settings(max_examples=20, deadline=None)
@given(body=programs(), a=st.integers(-50, 50), b=st.integers(-50, 50),
       c=st.integers(-50, 50))
def test_generated_programs_agree(body, a, b, c):
    """Every random structured program leaves both engines in the same
    final state: result, registers, float registers, cycles, memory."""
    src = f"""
    int build(void) {{
        int vspec a = param(int, 0);
        int vspec b = param(int, 1);
        int vspec c = param(int, 2);
        void cspec code = `{{
            int i, j;
            {body}
            return a * 3 + b * 5 + c * 7;
        }};
        return (int)compile(code, int);
    }}
    """
    states = {}
    for engine in ENGINES:
        proc = compile_c(src, backend="icode", compile_static=False,
                         engine=engine, tiering=HOT2)
        entry = proc.run("build")
        rv = proc.function(entry, "iii", "i")(a, b, c)
        cpu = proc.machine.cpu
        states[engine] = (rv, list(cpu.regs), list(cpu.fregs), cpu.cycles,
                         bytes(proc.machine.memory._data))
    assert states["block"] == states["reference"], body
    assert states["tiered"] == states["reference"], body


@pytest.mark.parametrize("backend", ["vcode", "icode"])
def test_loop_program_agrees_per_backend(backend):
    src = """
    int build(void) {
        int vspec n = param(int, 0);
        void cspec code = `{
            int i, acc;
            acc = 0;
            for (i = 1; i <= n; i++) { acc = acc + i * i; }
            return acc;
        };
        return (int)compile(code, int);
    }
    """
    results = {}
    for engine in ENGINES:
        proc = compile_c(src, backend=backend, compile_static=False,
                         engine=engine, tiering=HOT2)
        fn = proc.function(proc.run("build"), "i", "i")
        results[engine] = (fn(10), proc.machine.cpu.cycles)
    assert results["block"] == results["reference"]
    assert results["tiered"] == results["reference"]
    assert results["block"][0] == 385


# -- trap taxonomy --------------------------------------------------------------

def test_division_by_zero_traps_identically():
    outcomes = _run_both([
        Instruction(Op.LI, Reg.T0, 1),
        Instruction(Op.DIV, Reg.RV, Reg.T0, Reg.ZERO),
        Instruction(Op.RET),
    ])
    _assert_same_trap(outcomes, IllegalInstruction)


def test_division_by_zero_into_zero_register_is_discarded():
    """Reference semantics: a write to r0 is dropped before the divider
    runs, so div-by-zero into r0 does NOT trap.  The block engine must
    preserve this quirk exactly."""
    outcomes = _run_both([
        Instruction(Op.LI, Reg.T0, 1),
        Instruction(Op.DIV, Reg.ZERO, Reg.T0, Reg.ZERO),
        Instruction(Op.LI, Reg.RV, 7),
        Instruction(Op.RET),
    ])
    assert outcomes["block"] == outcomes["reference"]
    assert outcomes["tiered"] == outcomes["reference"]
    assert outcomes["block"][:2] == ("ok", 7)


def test_null_load_traps_identically():
    outcomes = _run_both([
        Instruction(Op.LW, Reg.RV, Reg.ZERO, 0),
        Instruction(Op.RET),
    ])
    _assert_same_trap(outcomes, SegmentationFault)
    assert "null guard" in str(outcomes["block"][2])


def test_unaligned_store_traps_identically():
    outcomes = _run_both([
        Instruction(Op.LI, Reg.T0, 0x2002),
        Instruction(Op.SW, Reg.T0, Reg.T0, 1),
        Instruction(Op.RET),
    ])
    _assert_same_trap(outcomes, UnalignedAccess)


def test_branch_out_of_code_range_traps_identically():
    outcomes = _run_both([
        Instruction(Op.JMP, 99_999),
    ])
    _assert_same_trap(outcomes, SegmentationFault)


# -- watchdog taxonomy ----------------------------------------------------------

def _countdown(n):
    # On a fresh machine pc 0 holds the top-level HALT, so extend() places
    # these at pc 1..4; the branch targets the SUBI at pc 2.
    return [
        Instruction(Op.LI, Reg.T0, n),
        Instruction(Op.SUBI, Reg.T0, Reg.T0, 1),
        Instruction(Op.BNEZ, Reg.T0, 2),
        Instruction(Op.RET),
    ]


def test_watchdog_taxonomy_matches_reference_exactly():
    """Whether a run exhausts its budget is a yes/no the two engines must
    answer identically for EVERY fuel value, even though the block engine
    only checks at block boundaries."""
    ref = Machine(engine="reference")
    entry = ref.code.extend(_countdown(6))
    ref.code.link()
    ref.call(entry)
    exact = ref.cpu.cycles          # precise cost of the whole run

    for fuel in range(exact - 3, exact + 2):
        outcomes = _run_both(_countdown(6), fuel=fuel)
        reference = outcomes["reference"]
        for engine in ("block", "tiered"):
            got = outcomes[engine]
            assert got[0] == reference[0], (engine, fuel, exact, outcomes)
            if reference[0] == "trap":
                assert got[1] == reference[1] == "CycleBudgetExceeded"
            else:
                assert got == reference   # success: cycles equal too


def test_watchdog_overshoot_is_bounded():
    """A budget trap may land past the limit, but never by more than one
    maximal block."""
    machine = Machine(fuel=500, engine="block")
    entry = machine.code.extend(_countdown(1_000_000))
    machine.code.link()
    with pytest.raises(CycleBudgetExceeded, match="budget"):
        machine.call(entry)
    bound = 500 + MAX_BLOCK_INSTRUCTIONS * max(CYCLE_COST.values())
    assert machine.cpu.cycles <= bound


def test_tiered_watchdog_overshoot_is_bounded():
    """The tiered engine checks fuel once per *trace* return, so the
    licensed overshoot grows to one maximal trace (each instruction may
    additionally carry a +1 taken-branch charge riding pend)."""
    from repro.tiering import TieringPolicy

    policy = TieringPolicy()
    machine = Machine(fuel=500, engine="tiered",
                      tiering={"hot_threshold": 2})
    entry = machine.code.extend(_countdown(1_000_000))
    machine.code.link()
    with pytest.raises(CycleBudgetExceeded, match="budget"):
        machine.call(entry)
    bound = 500 + policy.max_trace_instructions * \
        (max(CYCLE_COST.values()) + 1)
    assert machine.cpu.cycles <= bound


# -- icache ---------------------------------------------------------------------

def test_icache_cycles_identical_across_engines():
    # Tiering disarms itself under an icache (promotion would change the
    # fetch pattern); the tiered engine must degrade to plain blocks.
    outcomes = _run_both(_countdown(40), icache=True)
    assert outcomes["block"] == outcomes["reference"]
    assert outcomes["tiered"] == outcomes["reference"]


def test_attaching_icache_mid_machine_rebuilds_blocks():
    """The engine environment is rebuilt when machine.icache changes, so
    already-cached penalty-free blocks cannot leak stale cycle counts."""
    results = {}
    for engine in ENGINES:
        machine = Machine(engine=engine)
        entry = machine.code.extend(_countdown(12))
        machine.code.link()
        machine.call(entry)
        cold = machine.cpu.cycles
        machine.icache = ICache()
        machine.call(entry)
        results[engine] = (cold, machine.cpu.cycles)
    assert results["block"] == results["reference"]
    assert results["tiered"] == results["reference"]


# -- host calls -----------------------------------------------------------------

def test_hostcall_agreement():
    for engine in ENGINES:
        seen = []
        machine = Machine(engine=engine)
        idx = machine.register_host_function(
            "probe", lambda cpu: seen.append(cpu.regs[Reg.A0]))
        entry = machine.code.extend([
            Instruction(Op.LI, Reg.A0, 33),
            Instruction(Op.HOSTCALL, idx),
            Instruction(Op.LI, Reg.RV, 1),
            Instruction(Op.RET),
        ])
        machine.code.link()
        assert machine.call(entry) == 1
        assert seen == [33], engine
        assert machine.cpu.regs[Reg.ZERO] == 0


@pytest.mark.parametrize("bad_index", [-1, 99, None])
def test_hostcall_bad_index_traps_identically(bad_index):
    """Unregistered, negative, and malformed hostcall operands all take
    the standard trap-annotation path on both engines (a negative index
    used to silently wrap around into the wrong host function)."""
    outcomes = _run_both(
        [Instruction(Op.HOSTCALL, bad_index), Instruction(Op.RET)],
        hosts=[("only", lambda cpu: None)])
    _assert_same_trap(outcomes, IllegalInstruction)
    trap = outcomes["block"][2]
    assert "not registered" in str(trap)
    assert trap.pc == 1
    assert trap.instr is not None


# -- block-cache invalidation ---------------------------------------------------

def test_rollback_invalidates_rolled_back_blocks_only():
    report.reset()
    machine = Machine(engine="block")
    e1 = machine.code.extend([Instruction(Op.LI, Reg.RV, 1),
                              Instruction(Op.RET)])
    machine.code.link()
    assert machine.call(e1) == 1

    machine.code.mark()
    e2 = machine.code.extend([Instruction(Op.LI, Reg.RV, 2),
                              Instruction(Op.RET)])
    machine.code.link()
    assert machine.call(e2) == 2

    machine.code.release()
    e3 = machine.code.extend([Instruction(Op.LI, Reg.RV, 3),
                              Instruction(Op.RET)])
    machine.code.link()
    assert e3 == e2                      # same addresses, new instructions
    assert machine.call(e3) == 3         # a stale block here would return 2
    assert report.dispatch_stats()["blocks_invalidated"] >= 1

    # The block below the rollback point survived and is still correct.
    hits_before = report.dispatch_stats()["block_cache_hits"]
    assert machine.call(e1) == 1
    assert report.dispatch_stats()["block_cache_hits"] > hits_before


def test_fault_injection_clears_the_block_cache():
    report.reset()
    machine = Machine(engine="block")
    entry = machine.code.extend([Instruction(Op.LI, Reg.RV, 9),
                                 Instruction(Op.RET)])
    machine.code.link()
    assert machine.call(entry) == 9
    compiled = report.dispatch_stats()["blocks_compiled"]

    machine.code.inject_emit_failure(nth=99)   # fires the "fault" event
    assert report.dispatch_stats()["blocks_invalidated"] >= 1
    assert machine.call(entry) == 9            # recompiled, still correct
    assert report.dispatch_stats()["blocks_compiled"] > compiled


def test_tier2_patched_code_composes_with_cached_blocks():
    """Tier-2 copy-and-patch appends clones past the link horizon, so
    previously cached blocks stay valid alongside the patched code."""
    report.reset()
    source = TABLE1_ROWS["one large cspec, dynamic locals"]()
    proc = compile_c(source, backend="icode")     # spec cache defaults on
    f1 = proc.function(proc.run("build", 5), "i", "i")
    first = [f1(arg) for arg in (0, 1, 9)]
    f2 = proc.function(proc.run("build", 7), "i", "i")   # Tier-2 clone
    assert report.cache_stats()["patched"] >= 1

    oracle = compile_c(source, backend="icode", codecache=False)
    f_oracle = oracle.function(oracle.run("build", 7), "i", "i")
    for arg in (0, 1, 9):
        assert f2(arg) == f_oracle(arg)
    assert [f1(arg) for arg in (0, 1, 9)] == first   # old blocks still valid


def test_engine_knob_is_validated():
    from repro.tiering import TieredEngine

    with pytest.raises(MachineError, match="unknown execution engine"):
        Machine(engine="turbo")
    assert Machine(engine="reference")._engine is None
    assert Machine().engine == "tiered"
    assert isinstance(Machine()._engine, TieredEngine)


# -- trace-cache invalidation ---------------------------------------------------

def test_rollback_invalidates_traces_with_blocks():
    """A segment rollback must drop traces formed over the rolled-back
    region; re-extended code at the same addresses reruns correctly."""
    report.reset()
    machine = Machine(engine="tiered", tiering=HOT2)
    e1 = machine.code.extend(_countdown(30))
    machine.code.link()
    machine.call(e1)
    assert report.tiering_stats()["promotions"] >= 1

    machine.code.mark()
    e2 = machine.code.extend(_countdown(5))
    machine.code.link()
    machine.call(e2)
    machine.code.release()

    e3 = machine.code.extend([Instruction(Op.LI, Reg.RV, 3),
                              Instruction(Op.RET)])
    machine.code.link()
    assert e3 == e2
    assert machine.call(e3) == 3         # a stale trace here would loop
    assert report.tiering_stats()["traces_invalidated"] >= 0

    # The countdown below the rollback point still runs bit-identically.
    ref = Machine(engine="reference")
    r1 = ref.code.extend(_countdown(30))
    ref.code.link()
    ref.call(r1)
    before = machine.cpu.cycles
    machine.call(e1)
    assert machine.cpu.cycles - before == ref.cpu.cycles


def test_distrust_demotes_traces_and_profile():
    """distrust_block_cache (the exec-trust breaker's demotion hook) must
    drop formed traces AND the hotness profile, so a re-trusted machine
    starts cold instead of instantly re-promoting."""
    report.reset()
    machine = Machine(engine="tiered", tiering=HOT2)
    entry = machine.code.extend(_countdown(30))
    machine.code.link()
    machine.call(entry)
    assert report.tiering_stats()["promotions"] >= 1
    engine = machine._engine
    assert engine._traces

    machine.distrust_block_cache()
    assert not engine._traces
    assert not engine._counts
    assert report.tiering_stats()["traces_invalidated"] >= 1

    # Still correct (and re-promotes) after demotion.
    before = machine.cpu.cycles
    machine.call(entry)
    ref = Machine(engine="reference")
    r1 = ref.code.extend(_countdown(30))
    ref.code.link()
    ref.call(r1)
    assert machine.cpu.cycles - before == ref.cpu.cycles
